package prog_test

import (
	"testing"

	"opgate/internal/emu"
	"opgate/internal/isa"
	"opgate/internal/prog"
)

const loopSrc = `
.data
out: .space 8
.text
.func main
	lda r1, 0(rz)
	lda r2, 0(rz)
loop:
	add r2, r2, r1
	and r2, r2, #65535
	add r1, r1, #1
	cmplt r3, r1, #20
	bne r3, loop
	lda r4, =out
	st.q r2, 0(r4)
	out.w r2
	halt
`

// TestEditorIdentity: building without edits reproduces the program.
func TestEditorIdentity(t *testing.T) {
	p := mustAssemble(t, loopSrc)
	ed := prog.NewEditor(p)
	q, err := ed.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Ins) != len(p.Ins) {
		t.Fatalf("identity rebuild changed length %d -> %d", len(p.Ins), len(q.Ins))
	}
	if err := emu.CheckEquivalence(p, q); err != nil {
		t.Fatal(err)
	}
}

// TestEditorInsertBefore: a no-op instruction inserted before a branch
// target receives the redirected edges and preserves behaviour.
func TestEditorInsertBefore(t *testing.T) {
	p := mustAssemble(t, loopSrc)
	ed := prog.NewEditor(p)
	loopHead := ed.NodeAt(p.Labels["loop"])
	// Insert "lda r5, 1(rz)" (dead) before the loop head; the back edge
	// must now execute it each iteration.
	ed.InsertBefore(loopHead, isa.Instruction{Op: isa.OpLDA, Width: isa.W64, Rd: 5, Ra: isa.ZeroReg, Imm: 1})
	q, err := ed.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Ins) != len(p.Ins)+1 {
		t.Fatalf("expected one extra instruction")
	}
	if err := emu.CheckEquivalence(p, q); err != nil {
		t.Fatal(err)
	}
	// The branch in q targets the inserted node.
	r1, _ := emu.Execute(q)
	if r1 == nil {
		t.Fatal("no result")
	}
}

// TestEditorDelete: deleting a dead instruction redirects branches to the
// next live node and preserves behaviour.
func TestEditorDelete(t *testing.T) {
	p := mustAssemble(t, loopSrc)
	ed := prog.NewEditor(p)
	// First make it dead-insert then delete it again.
	loopHead := ed.NodeAt(p.Labels["loop"])
	n := ed.InsertBefore(loopHead, isa.Instruction{Op: isa.OpLDA, Width: isa.W64, Rd: 5, Ra: isa.ZeroReg, Imm: 1})
	ed.Delete(n)
	q, err := ed.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Ins) != len(p.Ins) {
		t.Fatalf("delete did not remove the insert")
	}
	if err := emu.CheckEquivalence(p, q); err != nil {
		t.Fatal(err)
	}
}

// TestEditorCloneRange: cloning the loop body and steering odd iterations
// into the clone keeps behaviour identical (the clone is equivalent code).
func TestEditorCloneRange(t *testing.T) {
	p := mustAssemble(t, loopSrc)
	ed := prog.NewEditor(p)

	start := p.Labels["loop"]
	f := p.Funcs[0]
	blk := f.BlockOf(start)
	entry, mapping, err := ed.CloneRange(0, start, blk.End)
	if err != nil {
		t.Fatal(err)
	}
	if len(mapping) != blk.End-start {
		t.Fatalf("mapping has %d entries, want %d", len(mapping), blk.End-start)
	}
	// Guard: always take the clone (cmpeq rz==0 is true -> bne never...
	// use an unconditional test: cmpeq t,rz,#0 gives 1, bne jumps).
	anchor := ed.NodeAt(start)
	g1 := ed.InsertBeforeNoRedirect(anchor, isa.Instruction{
		Op: isa.OpCMPEQ, Width: isa.W64, Rd: prog.RegScratch, Ra: isa.ZeroReg, Imm: 0, HasImm: true,
	})
	_ = g1
	g2 := ed.InsertBeforeNoRedirect(anchor, isa.Instruction{Op: isa.OpBNE, Ra: prog.RegScratch})
	ed.SetTarget(g2, entry)

	q, err := ed.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := emu.CheckEquivalence(p, q); err != nil {
		t.Fatal(err)
	}
	// The clone actually executes: dynamic count grows by the guard.
	r0, _ := emu.Execute(p)
	r1, _ := emu.Execute(q)
	if r1.Dyn <= r0.Dyn {
		t.Errorf("guarded program retired %d <= original %d", r1.Dyn, r0.Dyn)
	}
}

// TestEditorCloneRejoins: a clone of a range that falls through must end
// with an explicit branch to the join point.
func TestEditorCloneRejoins(t *testing.T) {
	p := mustAssemble(t, loopSrc)
	ed := prog.NewEditor(p)
	start := p.Labels["loop"]
	// Clone only the first two instructions of the body (falls through).
	entry, _, err := ed.CloneRange(0, start, start+2)
	if err != nil {
		t.Fatal(err)
	}
	_ = entry
	q, err := ed.Build()
	if err != nil {
		t.Fatal(err)
	}
	// The clone is unreachable (no guard), so behaviour is unchanged and
	// the program must still validate (the rejoin BR keeps control flow
	// closed).
	if err := emu.CheckEquivalence(p, q); err != nil {
		t.Fatal(err)
	}
	last := q.Ins[len(q.Ins)-1]
	if last.Op != isa.OpBR {
		t.Errorf("clone tail = %v, want a rejoin branch", last.Op)
	}
}

// TestEditorReplace: swapping an instruction in place.
func TestEditorReplace(t *testing.T) {
	p := mustAssemble(t, loopSrc)
	ed := prog.NewEditor(p)
	// Replace "and r2, r2, #65535" with an equivalent MSKL.
	var andIdx = -1
	for i := range p.Ins {
		if p.Ins[i].Op == isa.OpAND {
			andIdx = i
		}
	}
	ed.Replace(ed.NodeAt(andIdx), isa.Instruction{Op: isa.OpMSKL, Width: isa.W16, Rd: 2, Ra: 2})
	q, err := ed.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := emu.CheckEquivalence(p, q); err != nil {
		t.Fatal(err)
	}
}
