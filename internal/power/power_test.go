package power

import (
	"math"
	"testing"
	"testing/quick"
)

// TestTable1MatchesPaper: the regenerated Table 1 must reproduce the
// paper's integer pattern exactly (savings 64→{32,16,8} = 1, 3, 6 and so
// on).
func TestTable1MatchesPaper(t *testing.T) {
	tab := ALUSavingsTable(DefaultParams())
	// Row/col order: 64, 32, 16, 8.
	want := [4][4]float64{
		{0, 1, 3, 6},
		{-1, 0, 2, 5},
		{-3, -2, 0, 3},
		{-6, -5, -3, 0},
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if math.Abs(tab[i][j]-want[i][j]) > 1e-9 {
				t.Errorf("Table1[%d][%d] = %v, want %v", i, j, tab[i][j], want[i][j])
			}
		}
	}
}

func TestWidthProfileMonotone(t *testing.T) {
	prev := -1.0
	for b := 1; b <= 8; b++ {
		p := WidthProfile(b)
		if p < prev {
			t.Errorf("profile not monotone at %d bytes: %v < %v", b, p, prev)
		}
		if p < 0 || p > 1 {
			t.Errorf("profile(%d) = %v out of range", b, p)
		}
		prev = p
	}
	if WidthProfile(1) != 0 || WidthProfile(8) != 1 {
		t.Error("profile endpoints wrong")
	}
	// Anchor points from Table 1: 2 bytes = 1/2, 4 bytes = 5/6.
	if WidthProfile(2) != 0.5 {
		t.Errorf("profile(2) = %v", WidthProfile(2))
	}
	if math.Abs(WidthProfile(4)-5.0/6.0) > 1e-12 {
		t.Errorf("profile(4) = %v", WidthProfile(4))
	}
}

func TestSizeClass(t *testing.T) {
	cases := map[int64]int{
		0: 1, 100: 1, -100: 1,
		200: 2, 30000: 2,
		1 << 20: 5, 1 << 32: 5, 1 << 38: 5,
		1 << 40: 8, math.MaxInt64: 8,
	}
	for v, want := range cases {
		if got := SizeClass(v); got != want {
			t.Errorf("SizeClass(%d) = %d, want %d", v, got, want)
		}
	}
}

// TestSizeClassCoversSignificance: the 2-bit class always covers the
// exact significance (quantisation only rounds up).
func TestSizeClassCoversSignificance(t *testing.T) {
	f := func(v int64) bool { return SizeClass(v) >= SignificantBytes(v) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestActiveBytes(t *testing.T) {
	v := int64(300) // 2 significant bytes
	if got := ActiveBytes(GateNone, 1, v); got != 8 {
		t.Errorf("none: %d", got)
	}
	if got := ActiveBytes(GateSoftware, 4, v); got != 4 {
		t.Errorf("software: %d", got)
	}
	if got := ActiveBytes(GateHWSignificance, 8, v); got != 2 {
		t.Errorf("significance: %d", got)
	}
	if got := ActiveBytes(GateHWSize, 8, 1<<33); got != 5 {
		t.Errorf("size class: %d", got)
	}
	// Cooperative takes the min of software width and hardware tag.
	if got := ActiveBytes(GateCooperative, 1, v); got != 1 {
		t.Errorf("cooperative sw-narrow: %d", got)
	}
	if got := ActiveBytes(GateCooperativeSig, 8, v); got != 2 {
		t.Errorf("cooperative hw-narrow: %d", got)
	}
}

func TestMeterAccounting(t *testing.T) {
	params := DefaultParams()
	m := NewMeter(params, GateSoftware)
	m.AccessValue(FU, 8, 0)
	full := m.Energy[FU]
	m2 := NewMeter(params, GateSoftware)
	m2.AccessValue(FU, 1, 0)
	narrow := m2.Energy[FU]
	if narrow >= full {
		t.Errorf("narrow access (%v) not cheaper than full (%v)", narrow, full)
	}
	if full-narrow != params.Gated[FU] {
		t.Errorf("delta = %v, want the full gated component %v", full-narrow, params.Gated[FU])
	}
	// Baseline mode ignores the software width.
	m3 := NewMeter(params, GateNone)
	m3.AccessValue(FU, 1, 0)
	if m3.Energy[FU] != full {
		t.Error("GateNone must charge full width")
	}
}

func TestTagOverheadCharged(t *testing.T) {
	params := DefaultParams()
	sw := NewMeter(params, GateSoftware)
	hw := NewMeter(params, GateHWSignificance)
	// Same one-byte value: hardware pays the tag.
	sw.AccessValue(FU, 1, 1)
	hw.AccessValue(FU, 8, 1)
	if hw.Energy[FU] <= sw.Energy[FU] {
		t.Error("significance tags must cost something over pure software gating")
	}
}

func TestSavingsAndED2(t *testing.T) {
	params := DefaultParams()
	base := NewMeter(params, GateNone)
	gated := NewMeter(params, GateSoftware)
	for i := 0; i < 100; i++ {
		base.AccessValue(FU, 8, 0)
		gated.AccessValue(FU, 1, 0)
	}
	per, total := Savings(base, gated)
	if per[FU] <= 0 || total <= 0 {
		t.Errorf("expected positive savings, got %v / %v", per[FU], total)
	}
	// Same energy, fewer cycles: positive ED² saving from delay alone.
	if v := EnergyDelay2Saving(100, 100, 100, 90); v <= 0 {
		t.Errorf("delay improvement gives ED2 %v", v)
	}
	// Energy halved, delay doubled: ED² worsens (0.5 * 4 = 2x).
	if v := EnergyDelay2Saving(100, 100, 50, 200); v >= 0 {
		t.Errorf("ED2 should be negative, got %v", v)
	}
}

func TestOpEnergyMonotone(t *testing.T) {
	params := DefaultParams()
	prev := 0.0
	for b := 1; b <= 8; b++ {
		e := OpEnergy(params, b)
		if e < prev {
			t.Errorf("OpEnergy not monotone at %d bytes", b)
		}
		prev = e
	}
	if OpSavingsDelta(params, 8, 1) <= 0 {
		t.Error("narrowing must save energy")
	}
}

func TestTickChargesIdle(t *testing.T) {
	params := DefaultParams()
	m := NewMeter(params, GateNone)
	m.Tick(1000)
	if m.Cycles != 1000 {
		t.Errorf("cycles = %d", m.Cycles)
	}
	if m.Total() <= 0 {
		t.Error("idle energy not charged")
	}
}

func TestFormatALUTable(t *testing.T) {
	out := FormatALUTable(ALUSavingsTable(DefaultParams()))
	for _, want := range []string{"64", "32", "16", "8", "6.00", "-"} {
		if !containsStr(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
