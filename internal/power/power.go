// Package power implements the Wattch-style, activity-counted energy model
// (§4.1) with byte-granular operand gating. Every pipeline structure has a
// fixed per-access cost, a gated (data-width dependent) per-access cost,
// and a per-cycle idle cost. The gated cost scales with the number of
// active bytes through the empirical width profile of the paper's Table 1.
//
// Four gating modes reproduce the paper's configurations: no gating,
// software (opcode widths from VRP/VRS), the two hardware schemes of [9]
// (significance compression: 7 tag bits per word; size compression: 2 tag
// bits encoding 1/2/5/8 bytes), and the cooperative software+hardware
// scheme (§4.7).
package power

import (
	"fmt"
	"math/bits"
)

// Structure enumerates the energy-accounted processor parts (the x-axis of
// Figs. 3, 9 and 14).
type Structure int

// Processor structures.
const (
	Rename Structure = iota
	BPred
	IQ
	ROB
	RenameBuf
	LSQ
	RegFile
	ICache
	DCache
	L2Cache
	FU
	ResultBus
	NumStructures
)

var structureNames = [NumStructures]string{
	"Rename", "BranchPred", "InstrQueue", "ROB", "RenameBufs", "LSQ",
	"RegisterFile", "I-Cache", "D-Cache(L1)", "D-Cache(L2)", "FU", "ResultBus",
}

// String returns the display name used in the figures.
func (s Structure) String() string {
	if s >= 0 && s < NumStructures {
		return structureNames[s]
	}
	return fmt.Sprintf("Structure(%d)", int(s))
}

// Structures lists all accounted structures in figure order.
func Structures() []Structure {
	out := make([]Structure, NumStructures)
	for i := range out {
		out[i] = Structure(i)
	}
	return out
}

// GatingMode selects how active bytes are determined per access.
type GatingMode int

// Gating modes.
const (
	// GateNone is the baseline: every access moves 8 bytes.
	GateNone GatingMode = iota
	// GateSoftware gates by the opcode width (VRP/VRS re-encoding).
	GateSoftware
	// GateHWSignificance gates by the dynamic significant-byte count of
	// each value, with 7 tag bits per 64-bit word.
	GateHWSignificance
	// GateHWSize gates by the dynamic 2-bit size class (1/2/5/8 bytes).
	GateHWSize
	// GateCooperative combines software opcode widths with hardware size
	// tags (§4.7: manipulated values may have 8, 16, 40 or 64 bits).
	GateCooperative
	// GateCooperativeSig combines software opcode widths with the 7-bit
	// significance tags (the "VRP + hdw significance" point of Fig. 15).
	GateCooperativeSig
)

// Modes lists every gating mode in declaration order (index == int(mode)).
func Modes() []GatingMode {
	return []GatingMode{GateNone, GateSoftware, GateHWSignificance, GateHWSize,
		GateCooperative, GateCooperativeSig}
}

// String names the gating mode.
func (g GatingMode) String() string {
	switch g {
	case GateNone:
		return "none"
	case GateSoftware:
		return "software"
	case GateHWSignificance:
		return "hw-significance"
	case GateHWSize:
		return "hw-size"
	case GateCooperative:
		return "cooperative"
	case GateCooperativeSig:
		return "cooperative-sig"
	}
	return fmt.Sprintf("GatingMode(%d)", int(g))
}

// TagOverheadBytes returns the extra per-word storage a mode moves with
// every value (the hardware schemes' tag bits, §4.6).
func (g GatingMode) TagOverheadBytes() float64 {
	switch g {
	case GateHWSignificance, GateCooperativeSig:
		return 7.0 / 16.0 // seven tag bits per data word (tag array port)
	case GateHWSize, GateCooperative:
		return 2.0 / 16.0 // two tag bits per data word
	}
	return 0
}

// WidthProfile returns the fraction of the gated energy consumed when only
// `bytes` of a 64-bit datum are active. The anchor points reproduce the
// paper's Table 1 exactly: relative ALU energies at 1/2/4/8 bytes are
// 0, 3, 5 and 6 units above the 1-byte floor, i.e. fractions 0, 1/2, 5/6
// and 1 of the gated portion; intermediate byte counts interpolate
// linearly. The nine possible values are precomputed once (this sits on
// the per-access hot path of every power meter).
func WidthProfile(bytes int) float64 {
	switch {
	case bytes <= 1:
		return 0
	case bytes >= 8:
		return 1
	}
	return widthProfileTab[bytes]
}

// widthProfileTab caches widthProfileSlow for byte counts 0..8.
var widthProfileTab = func() [9]float64 {
	var t [9]float64
	for b := range t {
		t[b] = widthProfileSlow(b)
	}
	return t
}()

// widthProfileSlow is the defining interpolation over the Table 1 anchors.
func widthProfileSlow(bytes int) float64 {
	switch {
	case bytes <= 1:
		return 0
	case bytes >= 8:
		return 1
	}
	type pt struct {
		b int
		f float64
	}
	anchors := [4]pt{{1, 0}, {2, 0.5}, {4, 5.0 / 6.0}, {8, 1}}
	for i := 0; i < 3; i++ {
		a, b := anchors[i], anchors[i+1]
		if bytes >= a.b && bytes <= b.b {
			t := float64(bytes-a.b) / float64(b.b-a.b)
			return a.f + t*(b.f-a.f)
		}
	}
	return 1
}

// SignificantBytes returns the dynamic size of a value in sign-extended
// two's complement (1..8) — what the significance-compression hardware
// tags measure. The smallest k with v<<(64-8k)>>(64-8k) == v is the k
// whose 8k-1 magnitude bits cover the value, computed branch-light from
// the bit length (this sits on the per-access hot path of the hardware
// gating modes).
func SignificantBytes(v int64) int {
	u := uint64(v)
	if v < 0 {
		u = ^u
	}
	k := bits.Len64(u)/8 + 1
	if k > 8 {
		return 8
	}
	return k
}

// Wider returns the operand with the most significant bytes (a on ties).
// Dual-operand structures (instruction queue, functional units) are gated
// by their widest operand; the power model consumes operands only through
// SignificantBytes/SizeClass, so moving the wider value models that.
func Wider(a, b int64) int64 {
	if SignificantBytes(a) >= SignificantBytes(b) {
		return a
	}
	return b
}

// SizeClass quantises a value's significant bytes to the 2-bit encoding
// {1, 2, 5, 8} chosen in §4.6 from the SpecInt size distribution (the
// 5-byte class exists because memory addresses are 33–40 bits).
func SizeClass(v int64) int {
	s := SignificantBytes(v)
	switch {
	case s <= 1:
		return 1
	case s <= 2:
		return 2
	case s <= 5:
		return 5
	default:
		return 8
	}
}

// ActiveBytes computes the gated byte count for one value under a mode.
// swWidth is the opcode width in bytes (8 when the instruction carries no
// width or under hardware-only modes).
func ActiveBytes(mode GatingMode, swWidth int, value int64) int {
	switch mode {
	case GateNone:
		return 8
	case GateSoftware:
		return swWidth
	case GateHWSignificance:
		return SignificantBytes(value)
	case GateHWSize:
		return SizeClass(value)
	case GateCooperative:
		// The hardware tag can only express {1,2,5,8}; the software
		// width further bounds the moved bytes.
		hw := SizeClass(value)
		if swWidth < hw {
			return swWidth
		}
		return hw
	case GateCooperativeSig:
		hw := SignificantBytes(value)
		if swWidth < hw {
			return swWidth
		}
		return hw
	}
	return 8
}
