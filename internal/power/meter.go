package power

import "fmt"

// Params holds the per-structure energy coefficients (nanojoule-scale
// arbitrary units). Access energy for s with k active bytes is
//
//	Fixed[s] + Gated[s]*WidthProfile(k) + Gated[s]*tagOverhead
//
// and every cycle adds Idle[s] (clocking and leakage; this is what keeps
// whole-processor savings below the per-structure savings, as in Fig. 3).
type Params struct {
	Fixed [NumStructures]float64
	Gated [NumStructures]float64
	Idle  [NumStructures]float64
}

// DefaultParams returns coefficients calibrated so the per-structure
// savings of the software scheme land in the zones of Fig. 3: ~15% for the
// instruction queue, rename buffers, register file and result buses, ~18%
// for the functional units, small single digits for LSQ and L1, and ~6%
// for the processor as a whole. The FU gated maximum is 6.0 so that the
// regenerated Table 1 matches the paper's integers exactly.
func DefaultParams() Params {
	var p Params
	set := func(s Structure, fixed, gated, idle float64) {
		p.Fixed[s] = fixed
		p.Gated[s] = gated
		p.Idle[s] = idle
	}
	//                 fixed  gated  idle
	set(Rename /*  */, 1.70, 0.00, 1.00)
	set(BPred /*   */, 2.20, 0.00, 1.20)
	set(IQ /*      */, 1.10, 1.05, 0.30)
	set(ROB /*     */, 1.60, 0.00, 0.70)
	set(RenameBuf /**/, 0.60, 0.60, 0.15)
	set(LSQ /*     */, 1.60, 0.30, 0.20)
	set(RegFile /* */, 1.00, 1.00, 0.25)
	set(ICache /*  */, 2.60, 0.00, 1.40)
	set(DCache /*  */, 3.40, 0.40, 0.62)
	set(L2Cache /* */, 10.00, 0.00, 2.20)
	set(FU /*      */, 3.60, 6.00, 0.40)
	set(ResultBus /**/, 0.70, 0.70, 0.20)
	return p
}

// Meter accumulates energy by structure.
type Meter struct {
	Params   Params
	Mode     GatingMode
	Energy   [NumStructures]float64
	Accesses [NumStructures]int64
	Cycles   int64

	// SignExtendToCache selects §2.4's memory-hierarchy approach (2):
	// values are sign-extended to full width before entering the cache,
	// instead of carrying size tags (approach 1, the default). Under it,
	// cache data accesses are not gated. The paper chose approach (1)
	// "because it yields more energy benefits" — this knob measures that
	// claim.
	SignExtendToCache bool

	// tagE caches Gated[s]*TagOverheadBytes()/8 per structure — the
	// per-access tag-array energy of the hardware schemes — so the hot
	// accessors add a constant instead of recomputing the product.
	tagE [NumStructures]float64
}

// AccessCacheValue records a data-cache access. Under the sign-extend
// approach, stored values are full width regardless of gating.
func (m *Meter) AccessCacheValue(s Structure, swWidth int, value int64) {
	if m.SignExtendToCache {
		m.AccessBytes(s, 8)
		return
	}
	m.AccessValue(s, swWidth, value)
}

// NewMeter returns a meter with the given coefficients and gating mode.
func NewMeter(params Params, mode GatingMode) *Meter {
	m := &Meter{Params: params, Mode: mode}
	for s := Structure(0); s < NumStructures; s++ {
		m.tagE[s] = params.Gated[s] * mode.TagOverheadBytes() / 8.0
	}
	return m
}

// AccessFixed records a width-independent access (fetch, predictor lookup,
// rename table read).
func (m *Meter) AccessFixed(s Structure) {
	m.Accesses[s]++
	m.Energy[s] += m.Params.Fixed[s]
}

// AccessValue records an access that moves one data value. swWidth is the
// opcode width in bytes; value is the datum (for the hardware tags).
func (m *Meter) AccessValue(s Structure, swWidth int, value int64) {
	m.Accesses[s]++
	// ActiveBytes always lands in [1,8], so the width profile is a direct
	// table hit (this is the hottest call in a fused simulation).
	k := ActiveBytes(m.Mode, swWidth, value)
	e := m.Params.Fixed[s] + m.Params.Gated[s]*widthProfileTab[k]
	e += m.tagE[s]
	m.Energy[s] += e
}

// AccessBytes records an access with an explicit active-byte count
// (addresses, cache lines).
func (m *Meter) AccessBytes(s Structure, bytes int) {
	m.Accesses[s]++
	e := m.Params.Fixed[s] + m.Params.Gated[s]*WidthProfile(bytes)
	e += m.tagE[s]
	m.Energy[s] += e
}

// Tick charges idle energy for n cycles across all structures.
func (m *Meter) Tick(n int64) {
	m.Cycles += n
	for s := Structure(0); s < NumStructures; s++ {
		m.Energy[s] += m.Params.Idle[s] * float64(n)
	}
}

// Total returns the whole-processor energy.
func (m *Meter) Total() float64 {
	var t float64
	for s := Structure(0); s < NumStructures; s++ {
		t += m.Energy[s]
	}
	return t
}

// Savings returns the fractional per-structure and total energy savings of
// m relative to a baseline meter.
func Savings(baseline, gated *Meter) (perStructure [NumStructures]float64, total float64) {
	for s := Structure(0); s < NumStructures; s++ {
		if baseline.Energy[s] > 0 {
			perStructure[s] = 1 - gated.Energy[s]/baseline.Energy[s]
		}
	}
	if bt := baseline.Total(); bt > 0 {
		total = 1 - gated.Total()/bt
	}
	return perStructure, total
}

// EnergyDelay2Saving returns the fractional ED² improvement of a (energy,
// cycles) point against a baseline: 1 - (E/E0)·(D/D0)².
func EnergyDelay2Saving(baseE float64, baseCycles int64, e float64, cycles int64) float64 {
	if baseE <= 0 || baseCycles <= 0 {
		return 0
	}
	re := e / baseE
	rd := float64(cycles) / float64(baseCycles)
	return 1 - re*rd*rd
}

// ALUEnergy returns the FU access energy for an operation at the given
// width in bytes (used by Table 1 and the VRS saving model).
func ALUEnergy(p Params, bytes int) float64 {
	return p.Fixed[FU] + p.Gated[FU]*WidthProfile(bytes)
}

// OpEnergy returns the full datapath energy of one ALU-class instruction
// execution at the given operand width: the instruction queue entry, two
// register reads and one write, the rename buffer and result bus, and the
// functional unit. This is the per-instruction-type energy the VRS saving
// model observes (§3.1: "empirically defined for each instruction type and
// operand-width through the observation of its energy requirements").
func OpEnergy(p Params, bytes int) float64 {
	e := 0.0
	acc := func(s Structure, times float64) {
		e += times * (p.Fixed[s] + p.Gated[s]*WidthProfile(bytes))
	}
	acc(IQ, 1)
	acc(RegFile, 3) // two reads + one write
	acc(RenameBuf, 1)
	acc(ResultBus, 1)
	acc(FU, 1)
	return e
}

// OpSavingsDelta is the per-execution energy saved by narrowing an
// ALU-class instruction from oldBytes to newBytes.
func OpSavingsDelta(p Params, oldBytes, newBytes int) float64 {
	return OpEnergy(p, oldBytes) - OpEnergy(p, newBytes)
}

// ALUSavingsTable regenerates the paper's Table 1: the energy saved when
// an ALU operation moves from a source width (row) to a destination width
// (column); negative entries mean the destination is wider.
func ALUSavingsTable(p Params) [4][4]float64 {
	widths := [4]int{8, 4, 2, 1} // 64, 32, 16, 8 bits — paper's order
	var t [4][4]float64
	for i, src := range widths {
		for j, dst := range widths {
			t[i][j] = ALUEnergy(p, src) - ALUEnergy(p, dst)
		}
	}
	return t
}

// FormatALUTable renders Table 1 in the paper's layout.
func FormatALUTable(t [4][4]float64) string {
	hdr := [4]string{"64", "32", "16", "8"}
	out := "Dest\\Src    64     32     16      8\n"
	for i := 0; i < 4; i++ {
		row := fmt.Sprintf("%4s  ", hdr[i])
		for j := 0; j < 4; j++ {
			if i == j {
				row += "      -"
				continue
			}
			row += fmt.Sprintf(" %6.2f", t[j][i])
		}
		out += row + "\n"
	}
	return out
}
