package core_test

import (
	"strings"
	"testing"

	"opgate/internal/core"
	"opgate/internal/power"
	"opgate/internal/workload"
)

const tiny = `
.func main
	lda r1, 5(rz)
	add r2, r1, #3
	out.b r2
	halt
`

func TestAssembleAndRun(t *testing.T) {
	p, err := core.Assemble(tiny)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 || res.Output[0] != 8 {
		t.Errorf("output = %v", res.Output)
	}
}

func TestOptimizeVerifies(t *testing.T) {
	p, err := core.Assemble(tiny)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := core.Optimize(p, core.OptimizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(opt.Summary(), "8b") {
		t.Errorf("summary: %s", opt.Summary())
	}
	// The tiny program's constants fit one byte.
	h := opt.Analysis.StaticHistogram()
	if h.Count[0] == 0 {
		t.Error("no byte-width instructions found")
	}
}

func TestOptimizeConventionalVsUseful(t *testing.T) {
	w, _ := workload.ByName("compress")
	p, _ := w.Build(workload.Train)
	conv, err := core.Optimize(p, core.OptimizeOptions{Conventional: true})
	if err != nil {
		t.Fatal(err)
	}
	useful, err := core.Optimize(p, core.OptimizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	hc, hu := conv.Analysis.StaticHistogram(), useful.Analysis.StaticHistogram()
	if hu.Count[3] > hc.Count[3] {
		t.Error("useful mode produced more 64-bit instructions than conventional")
	}
}

func TestSpecializeFacade(t *testing.T) {
	w, _ := workload.ByName("vortex")
	trainP, _ := w.Build(workload.Train)
	refP, _ := w.Build(workload.Ref)
	spec, err := core.Specialize(trainP, refP, core.SpecializeOptions{Threshold: 50})
	if err != nil {
		t.Fatal(err)
	}
	if spec.Result.NumSpecialized() == 0 {
		t.Error("vortex should specialize its record-status point")
	}
}

func TestSimulateAndCompare(t *testing.T) {
	p, err := core.Assemble(tiny)
	if err != nil {
		t.Fatal(err)
	}
	r, err := core.Simulate(p, core.SimOptions{Gating: power.GateNone})
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles <= 0 || r.Instructions != 4 {
		t.Errorf("cycles %d instructions %d", r.Cycles, r.Instructions)
	}
	opt, _ := core.Optimize(p, core.OptimizeOptions{})
	energy, ed2, err := core.CompareGating(opt.Program, power.GateSoftware)
	if err != nil {
		t.Fatal(err)
	}
	if energy < 0 || ed2 < 0 {
		t.Errorf("gating made things worse: %v %v", energy, ed2)
	}
}

func TestDisassembleFacade(t *testing.T) {
	p, _ := core.Assemble(tiny)
	text := core.Disassemble(p)
	if !strings.Contains(text, "add") {
		t.Errorf("disassembly missing add:\n%s", text)
	}
}
