// Package core is the public face of the operand-gating library: it ties
// the binary optimizer (value range propagation and value range
// specialization), the functional emulator, the out-of-order timing model
// and the operand-gated power model into a handful of calls that cover the
// common flows:
//
//	p, _ := core.AssembleFile("prog.s")          // or asm.Builder / workload kernels
//	opt, _ := core.Optimize(p, core.OptimizeOptions{})
//	fmt.Println(opt.Summary())
//	res, _ := core.Simulate(opt.Program, core.SimOptions{Gating: power.GateSoftware})
//
// Everything the facade exposes is also reachable directly through the
// internal packages; the facade exists so the examples and tools read like
// the paper's flow: analyze → re-encode → (optionally specialize) → run.
package core

import (
	"fmt"
	"os"

	"opgate/internal/asm"
	"opgate/internal/emu"
	"opgate/internal/power"
	"opgate/internal/prog"
	"opgate/internal/uarch"
	"opgate/internal/vrp"
	"opgate/internal/vrs"
)

// Assemble parses OG64 assembly text into a program.
func Assemble(src string) (*prog.Program, error) { return asm.Assemble(src) }

// AssembleFile parses an assembly file.
func AssembleFile(path string) (*prog.Program, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return asm.Assemble(string(b))
}

// OptimizeOptions selects the analysis mode for Optimize.
type OptimizeOptions struct {
	// Conventional disables the useful-range (demanded-byte) analysis,
	// reproducing the paper's "conventional VRP" baseline.
	Conventional bool
	// VerifyEquivalence re-executes the re-encoded binary against the
	// original and fails if observable behaviour differs. On by default
	// via Optimize; set SkipVerify to disable.
	SkipVerify bool
}

// Optimized is the result of running the binary optimizer.
type Optimized struct {
	// Program is the re-encoded binary (narrow opcodes assigned).
	Program *prog.Program
	// Analysis is the full VRP result (ranges, demands, widths).
	Analysis *vrp.Result
	// Original is the input binary.
	Original *prog.Program
}

// Summary renders a one-line static width histogram.
func (o *Optimized) Summary() string {
	h := o.Analysis.StaticHistogram()
	t := float64(h.Total())
	if t == 0 {
		return "no width-bearing instructions"
	}
	return fmt.Sprintf("widths: 8b %.0f%%  16b %.0f%%  32b %.0f%%  64b %.0f%% (%d instructions)",
		100*float64(h.Count[0])/t, 100*float64(h.Count[1])/t,
		100*float64(h.Count[2])/t, 100*float64(h.Count[3])/t, int64(t))
}

// Optimize runs value range propagation over the program and returns the
// re-encoded binary, verifying behavioural equivalence unless disabled.
func Optimize(p *prog.Program, opts OptimizeOptions) (*Optimized, error) {
	mode := vrp.Useful
	if opts.Conventional {
		mode = vrp.Conventional
	}
	r, err := vrp.Analyze(p, vrp.Options{Mode: mode})
	if err != nil {
		return nil, err
	}
	q := r.Apply()
	if !opts.SkipVerify {
		if err := emu.CheckEquivalence(p, q); err != nil {
			return nil, fmt.Errorf("core: re-encoded binary diverges: %w", err)
		}
	}
	return &Optimized{Program: q, Analysis: r, Original: p}, nil
}

// SpecializeOptions configures profile-guided specialization.
type SpecializeOptions struct {
	// Threshold is the VRS energy threshold (the paper's 110..30 nJ
	// sweep); zero means 50.
	Threshold float64
	// SkipVerify disables the behavioural equivalence check.
	SkipVerify bool
}

// Specialized is the result of the full VRS pipeline.
type Specialized struct {
	// Program is the transformed, re-encoded binary.
	Program *prog.Program
	// Result carries the profiled points, clones and statistics.
	Result *vrs.Result
}

// Specialize profiles trainProg (same code layout, training input) and
// applies value range specialization to refProg.
func Specialize(trainProg, refProg *prog.Program, opts SpecializeOptions) (*Specialized, error) {
	r, err := vrs.Specialize(trainProg, refProg, vrs.Options{Threshold: opts.Threshold})
	if err != nil {
		return nil, err
	}
	q := r.Apply()
	if !opts.SkipVerify {
		if err := emu.CheckEquivalence(refProg, q); err != nil {
			return nil, fmt.Errorf("core: specialized binary diverges: %w", err)
		}
	}
	return &Specialized{Program: q, Result: r}, nil
}

// Run executes a program functionally and returns its observable result.
func Run(p *prog.Program) (*emu.RunResult, error) { return emu.Execute(p) }

// SimOptions configures a timing+energy simulation.
type SimOptions struct {
	Gating power.GatingMode
	// Config overrides the Table 2 machine; nil uses the default.
	Config *uarch.Config
	// Params overrides the power coefficients; nil uses the default.
	Params *power.Params
}

// Simulate runs the out-of-order timing model with the operand-gated
// power model and returns cycles, energy, and rates.
func Simulate(p *prog.Program, opts SimOptions) (*uarch.Result, error) {
	cfg := uarch.DefaultConfig()
	if opts.Config != nil {
		cfg = *opts.Config
	}
	params := power.DefaultParams()
	if opts.Params != nil {
		params = *opts.Params
	}
	return uarch.Run(p, cfg, params, opts.Gating)
}

// CompareGating simulates the same program under baseline (ungated) and a
// gated mode, returning the fractional energy and ED² savings.
func CompareGating(p *prog.Program, mode power.GatingMode) (energySaving, ed2Saving float64, err error) {
	base, err := Simulate(p, SimOptions{Gating: power.GateNone})
	if err != nil {
		return 0, 0, err
	}
	g, err := Simulate(p, SimOptions{Gating: mode})
	if err != nil {
		return 0, 0, err
	}
	_, energySaving = power.Savings(base.Energy, g.Energy)
	ed2Saving = power.EnergyDelay2Saving(base.Energy.Total(), base.Cycles, g.Energy.Total(), g.Cycles)
	return energySaving, ed2Saving, nil
}

// Disassemble renders a program as assembly text.
func Disassemble(p *prog.Program) string { return asm.Disassemble(p) }
