// Package core is a thin compatibility adapter over the public opgate
// package, which is the real front door of the library: every type here
// is an alias and every function a one-line delegation. New code should
// import opgate directly; this shim keeps older internal callers and
// their tests compiling while they migrate.
package core

import (
	"opgate"

	"opgate/internal/emu"
	"opgate/internal/power"
	"opgate/internal/prog"
	"opgate/internal/uarch"
)

// OptimizeOptions selects the analysis mode for Optimize.
type OptimizeOptions = opgate.OptimizeOptions

// Optimized is the result of running the binary optimizer.
type Optimized = opgate.Optimized

// SpecializeOptions configures profile-guided specialization.
type SpecializeOptions = opgate.SpecializeOptions

// Specialized is the result of the full VRS pipeline.
type Specialized = opgate.Specialized

// SimOptions configures a timing+energy simulation.
type SimOptions = opgate.SimOptions

// Assemble parses OG64 assembly text into a program.
func Assemble(src string) (*prog.Program, error) { return opgate.Assemble(src) }

// AssembleFile parses an assembly file.
func AssembleFile(path string) (*prog.Program, error) { return opgate.AssembleFile(path) }

// Optimize runs value range propagation and re-encodes the program.
func Optimize(p *prog.Program, opts OptimizeOptions) (*Optimized, error) {
	return opgate.Optimize(p, opts)
}

// Specialize profiles trainProg and specializes refProg.
func Specialize(trainProg, refProg *prog.Program, opts SpecializeOptions) (*Specialized, error) {
	return opgate.Specialize(trainProg, refProg, opts)
}

// Run executes a program functionally.
func Run(p *prog.Program) (*emu.RunResult, error) { return opgate.Run(p) }

// Simulate runs the timing model with the operand-gated power model.
func Simulate(p *prog.Program, opts SimOptions) (*uarch.Result, error) {
	return opgate.Simulate(p, opts)
}

// CompareGating returns the fractional energy and ED² savings of a mode.
func CompareGating(p *prog.Program, mode power.GatingMode) (energySaving, ed2Saving float64, err error) {
	return opgate.CompareGating(p, mode)
}

// Disassemble renders a program as assembly text.
func Disassemble(p *prog.Program) string { return opgate.Disassemble(p) }
