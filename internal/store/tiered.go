package store

import (
	"sync"
	"sync/atomic"
)

// Tiered composes a local Backend in front of a remote one: reads are
// read-through (local hit, else remote fetch with a best-effort local
// fill), writes land locally synchronously and are written back to the
// remote tier asynchronously. The remote tier is an accelerator for the
// accelerator — every remote fault (unreachable peer, timeout, torn
// response) degrades to a local miss, and a saturated write-back queue
// drops writes rather than stalling the pipeline. Closing a Tiered is
// optional; Flush exists so tests can drain the write-back queue.
type Tiered struct {
	local  Backend
	remote Backend

	queue chan writeBack
	wg    sync.WaitGroup

	closeOnce sync.Once

	localHits, remoteHits, misses atomic.Int64
	writeBacks, wbErrors, wbDrops atomic.Int64
	puts, putErrors               atomic.Int64
}

type writeBack struct {
	key  Key
	data []byte
	ack  chan struct{} // Flush sentinel; nil for real writes
}

// DefaultWriteBackQueue bounds the asynchronous remote write-back queue
// when NewTiered is given queueLen <= 0.
const DefaultWriteBackQueue = 64

// NewTiered composes local in front of remote with an asynchronous
// write-back queue of queueLen entries (<= 0 selects
// DefaultWriteBackQueue). A single goroutine drains the queue; a full
// queue drops the write-back (counted) instead of blocking Put.
func NewTiered(local, remote Backend, queueLen int) *Tiered {
	if queueLen <= 0 {
		queueLen = DefaultWriteBackQueue
	}
	t := &Tiered{
		local:  local,
		remote: remote,
		queue:  make(chan writeBack, queueLen),
	}
	t.wg.Add(1)
	go t.writeBackLoop()
	return t
}

func (t *Tiered) writeBackLoop() {
	defer t.wg.Done()
	for wb := range t.queue {
		if wb.ack != nil {
			close(wb.ack)
			continue
		}
		if err := t.remote.Put(wb.key, wb.data); err != nil {
			t.wbErrors.Add(1)
		} else {
			t.writeBacks.Add(1)
		}
	}
}

// Get consults the local tier first, then the remote tier (filling the
// local tier on a remote hit so the next read is local). Remote faults
// are indistinguishable from remote misses by contract.
func (t *Tiered) Get(key Key) ([]byte, bool) {
	if data, ok := t.local.Get(key); ok {
		t.localHits.Add(1)
		return data, true
	}
	if data, ok := t.remote.Get(key); ok {
		t.remoteHits.Add(1)
		_ = t.local.Put(key, data) // best-effort fill
		return data, true
	}
	t.misses.Add(1)
	return nil, false
}

// Put writes locally (that error is the caller's) and enqueues an
// asynchronous remote write-back; a full queue drops the write-back.
func (t *Tiered) Put(key Key, data []byte) error {
	err := t.local.Put(key, data)
	if err != nil {
		t.putErrors.Add(1)
	} else {
		t.puts.Add(1)
	}
	select {
	case t.queue <- writeBack{key: key, data: data}:
	default:
		t.wbDrops.Add(1)
	}
	return err
}

// Delete removes the object from both tiers (best-effort).
func (t *Tiered) Delete(key Key) {
	t.local.Delete(key)
	t.remote.Delete(key)
}

// Flush blocks until every write-back enqueued before the call has been
// attempted — a test aid, not a durability guarantee (drops stay
// dropped).
func (t *Tiered) Flush() {
	ack := make(chan struct{})
	t.queue <- writeBack{ack: ack}
	<-ack
}

// Close stops the write-back goroutine after draining the queue. Put
// after Close panics; Close is for owners that know writes have stopped.
func (t *Tiered) Close() {
	t.closeOnce.Do(func() {
		close(t.queue)
		t.wg.Wait()
	})
}

// Stats merges both tiers' traffic into one snapshot: Hits/Misses
// describe the composed Get path, Puts/PutErrors the local write path,
// Evictions come from the local tier (the LRU lives there), and the
// tiered fields expose where hits landed and how write-back fared.
func (t *Tiered) Stats() Stats {
	local := t.local.Stats()
	return Stats{
		Hits:            t.localHits.Load() + t.remoteHits.Load(),
		Misses:          t.misses.Load(),
		Puts:            t.puts.Load(),
		PutErrors:       t.putErrors.Load(),
		Evictions:       local.Evictions,
		LocalHits:       t.localHits.Load(),
		RemoteHits:      t.remoteHits.Load(),
		WriteBacks:      t.writeBacks.Load(),
		WriteBackErrors: t.wbErrors.Load(),
		WriteBackDrops:  t.wbDrops.Load(),
	}
}
