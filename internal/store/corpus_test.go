package store

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var regenCorpus = flag.Bool("regen-corpus", false, "rewrite the committed FuzzTraceCodec seed corpus")

// TestFuzzCorpusSeeds pins the committed fuzz corpus to fuzzCorpusSeeds:
// plain `go test` replays the committed files through FuzzTraceCodec, and
// this test guarantees they stay in sync with the codec (rewrite with
// -regen-corpus after a deliberate wire-format change).
func TestFuzzCorpusSeeds(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzTraceCodec")
	for i, e := range fuzzCorpusSeeds() {
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", e)
		if *regenCorpus {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(name, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("missing corpus entry (regenerate with -regen-corpus): %v", err)
		}
		if string(got) != content {
			t.Errorf("%s is stale (regenerate with -regen-corpus)", name)
		}
	}
}
