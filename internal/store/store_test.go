package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"
)

// TestStoreRoundTrip covers the basic blob contract: miss before Put, hit
// after, overwrite in place, stats accounting.
func TestStoreRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	key := deriveKey("test", "blob")
	if _, ok := s.Get(key); ok {
		t.Fatal("hit on an empty store")
	}
	if err := s.Put(key, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if data, ok := s.Get(key); !ok || string(data) != "v1" {
		t.Fatalf("got %q/%v, want v1 hit", data, ok)
	}
	if err := s.Put(key, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if data, _ := s.Get(key); string(data) != "v2" {
		t.Fatalf("overwrite not visible: got %q", data)
	}
	st := s.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Puts != 2 || st.Evictions != 0 {
		t.Fatalf("stats drifted: %+v", st)
	}
}

// TestStoreTraceDefectIsMiss: a damaged on-disk trace must read as a miss
// (and be dropped) rather than fail or mislead the pipeline.
func TestStoreTraceDefectIsMiss(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	p := mustMiniProgram()
	id := ProgramIdentity(p)
	tr := capture(t, p)
	key := TraceKey("mini", "base", "train", id)
	if err := s.PutTrace(key, tr, id); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetTrace(key, p, id); !ok {
		t.Fatal("fresh trace did not read back")
	}

	// Flip one payload byte in place.
	path := s.Dir().objectPath(key)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[codecHeaderSize] ^= 0x01
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	pre := s.Stats()
	if _, ok := s.GetTrace(key, p, id); ok {
		t.Fatal("corrupted trace read back as a hit")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupted object was not dropped")
	}
	post := s.Stats()
	if post.Hits != pre.Hits || post.Misses != pre.Misses+1 {
		t.Fatalf("defect not reclassified as a miss: pre %+v post %+v", pre, post)
	}
	// And the drop makes room for a clean re-put.
	if err := s.PutTrace(key, tr, id); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.GetTrace(key, p, id); !ok || got.Len() != tr.Len() {
		t.Fatal("re-put trace did not read back")
	}
}

// TestStoreEviction: the LRU sweep trims the store to its byte budget,
// oldest recency first, keeping the just-written object and anything
// recently read.
func TestStoreEviction(t *testing.T) {
	const objSize = 1024
	s, err := Open(t.TempDir(), 3*objSize)
	if err != nil {
		t.Fatal(err)
	}
	blob := bytes.Repeat([]byte{0xAB}, objSize)
	keys := make([]Key, 4)
	base := time.Now().Add(-time.Hour)
	for i := range keys {
		keys[i] = deriveKey("evict", fmt.Sprint(i))
		if err := s.Put(keys[i], blob); err != nil {
			t.Fatal(err)
		}
		// Pin distinct, old mtimes so LRU order is deterministic.
		at := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(s.Dir().objectPath(keys[i]), at, at); err != nil {
			t.Fatal(err)
		}
	}
	// The fourth write already swept the coldest object (keys[0]). Reads
	// refresh recency: touching keys[1] makes keys[2] the victim of the
	// next write.
	if _, ok := s.Get(keys[1]); !ok {
		t.Fatal("expected keys[1] resident")
	}
	newKey := deriveKey("evict", "new")
	if err := s.Put(newKey, blob); err != nil {
		t.Fatal(err)
	}
	if size, err := s.Dir().Size(); err != nil || size > 3*objSize {
		t.Fatalf("store over budget after sweep: %d bytes (err %v)", size, err)
	}
	if _, err := os.Stat(s.Dir().objectPath(newKey)); err != nil {
		t.Fatal("just-written object was evicted")
	}
	if _, err := os.Stat(s.Dir().objectPath(keys[1])); err != nil {
		t.Fatal("recently read object was evicted ahead of colder ones")
	}
	if s.Stats().Evictions == 0 {
		t.Fatal("no evictions recorded despite exceeding the budget")
	}
}

// TestStoreKeptObjectMayExceedBudget: one object larger than the whole
// budget survives its own write (evicting it would make Put useless), but
// everything else goes.
func TestStoreKeptObjectMayExceedBudget(t *testing.T) {
	s, err := Open(t.TempDir(), 100)
	if err != nil {
		t.Fatal(err)
	}
	small := deriveKey("k", "small")
	if err := s.Put(small, make([]byte, 40)); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(s.Dir().objectPath(small), old, old); err != nil {
		t.Fatal(err)
	}
	big := deriveKey("k", "big")
	if err := s.Put(big, make([]byte, 500)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(big); !ok {
		t.Fatal("over-budget object did not survive its own write")
	}
	if _, err := os.Stat(s.Dir().objectPath(small)); !os.IsNotExist(err) {
		t.Fatal("older object survived a sweep that needed its bytes")
	}
}

// TestParseSize pins the -store-limit size grammar.
func TestParseSize(t *testing.T) {
	for in, want := range map[string]int64{
		"0":       0,
		"1048576": 1 << 20,
		"512k":    512 << 10,
		"256MiB":  256 << 20,
		"2g":      2 << 30,
		"2GB":     2 << 30,
		" 1T ":    1 << 40,
	} {
		got, err := ParseSize(in)
		if err != nil || got != want {
			t.Errorf("ParseSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "-1", "banana", "12x", "9999999999999g"} {
		if _, err := ParseSize(bad); err == nil {
			t.Errorf("ParseSize(%q) accepted", bad)
		}
	}
}

// TestStoreConcurrent hammers one store from many goroutines mixing puts,
// gets and trace round-trips over overlapping keys, with a budget small
// enough to keep the eviction sweep running. Run under -race in CI.
func TestStoreConcurrent(t *testing.T) {
	p := mustMiniProgram()
	id := ProgramIdentity(p)
	tr := capture(t, p)
	blob := EncodeTrace(tr, id)

	s, err := Open(t.TempDir(), int64(8*len(blob)))
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				key := TraceKey(fmt.Sprintf("w%d", (w+i)%5), "base", "train", id)
				switch i % 3 {
				case 0:
					if err := s.PutTrace(key, tr, id); err != nil {
						t.Errorf("put: %v", err)
						return
					}
				case 1:
					if got, ok := s.GetTrace(key, p, id); ok && got.Len() != tr.Len() {
						t.Errorf("trace read back with %d events, want %d", got.Len(), tr.Len())
						return
					}
				default:
					if data, ok := s.Get(key); ok && !bytes.Equal(data, blob) {
						t.Error("raw read returned a partial or foreign object")
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if limit := int64(8 * len(blob)); s.Dir().limit != limit {
		t.Fatalf("limit drifted: %d", s.Dir().limit)
	}
}

// TestStoreConcurrentUnderRemoveRenameFaults is TestStoreConcurrent with
// the eviction and install paths misbehaving: every few Rename and Remove
// calls fail, so sweeps race puts over undeletable files and installs
// abort mid-flight. The contract under fire is unchanged — puts fail only
// with injected errors, gets see whole objects or nothing, and the sweep
// never wedges the store. Run under -race in CI.
func TestStoreConcurrentUnderRemoveRenameFaults(t *testing.T) {
	p := mustMiniProgram()
	id := ProgramIdentity(p)
	tr := capture(t, p)
	blob := EncodeTrace(tr, id)

	ff := NewFaultFS()
	s, err := OpenFS(t.TempDir(), int64(4*len(blob)), ff)
	if err != nil {
		t.Fatal(err)
	}
	ff.FailRenames(4)
	ff.FailRemoves(3)

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				key := TraceKey(fmt.Sprintf("w%d", (w+i)%6), "base", "train", id)
				switch i % 4 {
				case 0:
					if err := s.PutTrace(key, tr, id); err != nil && !errors.Is(err, ErrInjected) {
						t.Errorf("put: non-injected error %v", err)
						return
					}
				case 1:
					if got, ok := s.GetTrace(key, p, id); ok && got.Len() != tr.Len() {
						t.Errorf("trace read back with %d events, want %d", got.Len(), tr.Len())
						return
					}
				case 2:
					s.Delete(key) // races the sweep over failing removes
				default:
					if data, ok := s.Get(key); ok && !bytes.Equal(data, blob) {
						t.Error("raw read returned a partial or foreign object")
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if ff.Injected() == 0 {
		t.Fatal("fault cadence never fired")
	}
	ff.Clear()
	key := TraceKey("recovery", "base", "train", id)
	if err := s.PutTrace(key, tr, id); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetTrace(key, p, id); !ok {
		t.Fatal("store unusable after the faulty run")
	}
}
