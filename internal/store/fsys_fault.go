package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// ErrInjected marks every failure a FaultFS fabricates, so tests can tell
// injected faults from real ones with errors.Is.
var ErrInjected = errors.New("store: injected fault")

// FaultFS is an FS over the real filesystem that injects the disk-failure
// classes the store's degradation contract must absorb:
//
//   - write failures (the full-disk ENOSPC shape): every Nth Write call
//     errors, optionally after persisting a prefix (a short write);
//   - rename failures: the atomic install step errors, leaving only the
//     staging file behind;
//   - torn renames: the install "succeeds" but the destination holds a
//     truncated object — the crashed-mid-rename / lying-disk shape that
//     only content validation can catch;
//   - remove failures: evictions and corrupt-object drops error;
//   - sync failures: File.Sync and SyncDir error, so durability barriers
//     (not just data writes) are a faultable class;
//   - lost dirents: renames whose parent directory is never SyncDir'd
//     are tracked, and DropUnsyncedRenames simulates the power cut that
//     loses exactly those directory entries.
//
// Faults are configured per-class with an every-Nth cadence (1 = always,
// 0 = never) and may be re-armed or cleared at any time, including while
// a store is live — all methods are safe for concurrent use. Injected
// is the running count of fabricated failures.
type FaultFS struct {
	fs osFS // the real filesystem underneath

	mu          sync.Mutex
	writeEvery  int  // fail every Nth Write call
	shortWrites bool // failing writes persist half the buffer first
	renameEvery int  // fail every Nth Rename
	tornEvery   int  // tear every Nth Rename (succeeds, truncated content)
	removeEvery int  // fail every Nth Remove
	syncEvery   int  // fail every Nth Sync (file) or SyncDir call

	writes, renames, removes, syncs int // per-class call counters
	injected                        int // faults fabricated so far

	// unsynced tracks files installed by Rename whose parent directory
	// has not been SyncDir'd since: the set a power cut may lose.
	unsynced map[string][]string // parent dir → installed paths
}

// NewFaultFS returns a FaultFS with no faults armed: it behaves exactly
// like the real filesystem until a Fail*/Tear* method arms a class.
func NewFaultFS() *FaultFS { return &FaultFS{} }

// FailWrites arms write faults: every Nth Write call fails (1 = every
// write, 0 = disarm). With short set, a failing write persists the first
// half of its buffer before erroring, modeling a partial write.
func (f *FaultFS) FailWrites(every int, short bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writeEvery, f.shortWrites = every, short
	f.writes = 0
}

// FailRenames arms rename faults: every Nth Rename errors without
// touching the destination (0 = disarm).
func (f *FaultFS) FailRenames(every int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.renameEvery = every
	f.renames = 0
}

// TearRenames arms torn renames: every Nth Rename reports success but
// installs only the first half of the source's bytes (0 = disarm).
func (f *FaultFS) TearRenames(every int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tornEvery = every
	f.renames = 0
}

// FailRemoves arms remove faults: every Nth Remove errors, leaving the
// file in place (0 = disarm).
func (f *FaultFS) FailRemoves(every int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.removeEvery = every
	f.removes = 0
}

// FailSyncs arms durability-barrier faults: every Nth Sync — a staged
// file's fsync or a directory's SyncDir — errors (0 = disarm). A failed
// SyncDir leaves its directory's renames in the unsynced set, so a
// subsequent DropUnsyncedRenames models the power cut the barrier was
// supposed to survive.
func (f *FaultFS) FailSyncs(every int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncEvery = every
	f.syncs = 0
}

// DropUnsyncedRenames simulates a power cut that loses the directory
// entries of every rename not yet covered by a SyncDir on its parent:
// those files are removed from disk. It returns how many were lost.
// Writers that sync their directories (as the store and journal must)
// lose nothing here — that is exactly the property under test.
func (f *FaultFS) DropUnsyncedRenames() int {
	f.mu.Lock()
	pending := f.unsynced
	f.unsynced = nil
	f.mu.Unlock()
	lost := 0
	for _, paths := range pending {
		for _, p := range paths {
			if os.Remove(p) == nil {
				lost++
			}
		}
	}
	return lost
}

// Clear disarms every fault class; the counters of injected faults and
// per-class calls keep their values.
func (f *FaultFS) Clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writeEvery, f.shortWrites = 0, false
	f.renameEvery, f.tornEvery, f.removeEvery, f.syncEvery = 0, 0, 0, 0
}

// Injected returns how many faults have been fabricated so far — the
// probe chaos tests use to assert a scenario actually exercised faults.
func (f *FaultFS) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// due advances a per-class counter and reports whether this call is the
// Nth that must fault (f.mu held by the caller).
func due(counter *int, every int) bool {
	if every <= 0 {
		return false
	}
	*counter++
	return *counter%every == 0
}

// Pass-throughs: the store's read and setup paths fault only via the
// write/rename/remove classes above — failing ReadFile would just be the
// trivially-handled miss the production code already takes for absent
// objects, so there is nothing extra to prove by injecting it.

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error { return f.fs.MkdirAll(path, perm) }
func (f *FaultFS) ReadDir(name string) ([]os.DirEntry, error)   { return f.fs.ReadDir(name) }
func (f *FaultFS) ReadFile(name string) ([]byte, error)         { return f.fs.ReadFile(name) }
func (f *FaultFS) Stat(name string) (os.FileInfo, error)        { return f.fs.Stat(name) }
func (f *FaultFS) Chtimes(name string, a, m time.Time) error    { return f.fs.Chtimes(name, a, m) }

func (f *FaultFS) Remove(name string) error {
	f.mu.Lock()
	fault := due(&f.removes, f.removeEvery)
	if fault {
		f.injected++
	}
	f.mu.Unlock()
	if fault {
		return fmt.Errorf("%w: remove %s", ErrInjected, name)
	}
	return f.fs.Remove(name)
}

// noteRename records an installed path as volatile until its parent
// directory is synced.
func (f *FaultFS) noteRename(newpath string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.unsynced == nil {
		f.unsynced = map[string][]string{}
	}
	dir := filepath.Dir(newpath)
	f.unsynced[dir] = append(f.unsynced[dir], newpath)
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	var torn, fail bool
	if f.tornEvery > 0 {
		torn = due(&f.renames, f.tornEvery)
	} else {
		fail = due(&f.renames, f.renameEvery)
	}
	if torn || fail {
		f.injected++
	}
	f.mu.Unlock()
	if !fail {
		defer f.noteRename(newpath)
	}
	switch {
	case fail:
		return fmt.Errorf("%w: rename %s", ErrInjected, oldpath)
	case torn:
		// The worst rename failure mode: success is reported, but the
		// destination holds a truncated object. Install the prefix with
		// the same write-then-rename dance so concurrent readers of the
		// destination still never see a mid-write file.
		data, err := os.ReadFile(oldpath)
		if err != nil {
			return err
		}
		tmp := oldpath + ".torn"
		if err := os.WriteFile(tmp, data[:len(data)/2], 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, newpath); err != nil {
			return err
		}
		return os.Remove(oldpath)
	}
	return f.fs.Rename(oldpath, newpath)
}

func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	file, err := f.fs.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, File: file}, nil
}

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	file, err := f.fs.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, File: file}, nil
}

// syncDue advances the shared sync counter and reports whether this Sync
// or SyncDir call must fault.
func (f *FaultFS) syncDue() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	fault := due(&f.syncs, f.syncEvery)
	if fault {
		f.injected++
	}
	return fault
}

func (f *FaultFS) SyncDir(name string) error {
	if f.syncDue() {
		// The barrier failed: the directory's renames stay volatile, so a
		// later DropUnsyncedRenames can take them.
		return fmt.Errorf("%w: syncdir %s", ErrInjected, name)
	}
	f.mu.Lock()
	delete(f.unsynced, name)
	f.mu.Unlock()
	return f.fs.SyncDir(name)
}

// faultFile intercepts Write to inject full-disk and short-write faults
// and Sync to inject durability-barrier faults.
type faultFile struct {
	f *FaultFS
	File
}

func (ff *faultFile) Sync() error {
	if ff.f.syncDue() {
		return fmt.Errorf("%w: sync %s", ErrInjected, ff.Name())
	}
	return ff.File.Sync()
}

func (ff *faultFile) Write(p []byte) (int, error) {
	ff.f.mu.Lock()
	fault := due(&ff.f.writes, ff.f.writeEvery)
	short := ff.f.shortWrites
	if fault {
		ff.f.injected++
	}
	ff.f.mu.Unlock()
	if !fault {
		return ff.File.Write(p)
	}
	err := fmt.Errorf("%w: write %s", ErrInjected, ff.Name())
	if !short {
		return 0, err
	}
	n, werr := ff.File.Write(p[:len(p)/2])
	if werr != nil {
		return n, werr
	}
	return n, err
}
