// Package store is the persistent, content-addressed artifact store: packed
// retirement traces (emu.Trace) and rendered report blobs survive the
// process, keyed by a hash of everything that determines their content, so
// a warm `ogbench -store` run or a busy `opgated` service re-emulates
// nothing it has already seen. Layout under the root directory:
//
//	<root>/objects/<64-hex-char key>   one artifact per key
//	<root>/tmp/                        staging for atomic rename writes
//
// Writes land via temp-file + rename, so concurrent readers (including
// other processes sharing the root) never observe a partial object. Reads
// touch the object's mtime, and an LRU sweep after each write keeps the
// root under a byte budget. The store is an accelerator only: a missing,
// truncated, corrupted or program-mismatched object is a cache miss, never
// an error the simulation pipeline has to care about.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"strings"
	"sync"

	"opgate/internal/prog"
)

// Hash is a 32-byte content identity (SHA-256).
type Hash [32]byte

// String renders the identity as lowercase hex.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// Key addresses one stored artifact: 64 lowercase hex characters, the
// SHA-256 of the artifact's domain-separated identity tuple.
type Key string

// ParseKey validates an externally supplied key (e.g. an opgated URL path
// element) before it is used as a file name.
func ParseKey(s string) (Key, error) {
	if len(s) != 2*sha256.Size {
		return "", fmt.Errorf("store: key %q: want %d hex characters", s, 2*sha256.Size)
	}
	if _, err := hex.DecodeString(s); err != nil {
		return "", fmt.Errorf("store: key %q is not hex: %v", s, err)
	}
	return Key(s), nil
}

// deriveKey hashes a domain-separated tuple of strings: each part is
// length-prefixed, so ("ab","c") and ("a","bc") derive distinct keys.
func deriveKey(parts ...string) Key {
	h := sha256.New()
	var n [8]byte
	for _, part := range parts {
		binary.LittleEndian.PutUint64(n[:], uint64(len(part)))
		h.Write(n[:])
		h.Write([]byte(part))
	}
	return Key(hex.EncodeToString(h.Sum(nil)))
}

// TraceKey addresses the packed trace of one program variant: the workload
// name (a synthetic name carries its generator family/class/seed), the
// variant label, the input class, and the identity of the exact binary
// executed. The code identity makes the address content-correct — a
// changed kernel, generator, or optimizer produces a different variant
// binary and therefore a different key, so stale traces are unreachable
// rather than wrong.
func TraceKey(workload, variant, inputClass string, identity Hash) Key {
	return deriveKey("trace/v1", workload, variant, inputClass, identity.String())
}

// TraceMetaKey addresses the metadata document of one imported trace: a
// small JSON record (internal/tracework) naming the skeleton identity,
// event count, and blob key of the canonical trace stored under the
// corresponding TraceKey. Imported traces are keyed by their registry
// name and input class alone — the name IS the user-facing handle, so a
// re-import under the same name replaces the previous trace (the old
// blob stays content-addressed and unreachable).
func TraceMetaKey(workload, inputClass string) Key {
	return deriveKey("tracemeta/v1", workload, inputClass)
}

// TraceIndexKey addresses the best-effort name index of imported traces:
// a JSON list of registry names, updated read-modify-write on import.
// The index is a convenience for listing (ogtrace list, fleet
// inspection); the metadata documents remain the source of truth, so a
// lost update degrades listing, never correctness.
func TraceIndexKey() Key {
	return deriveKey("traceindex/v1")
}

// ReportKey addresses one experiment report sequence — stored in its
// structured canonical-JSON form (harness.EncodeReports) and rendered at
// read time — keyed by the experiment ID (the mode set it simulates is
// part of its definition), the evaluation input class, the VRS threshold,
// the workload list (paper kernels are implicit; synthetics are listed,
// carrying their generator seeds), and a code identity. A report depends
// on the whole pipeline — kernels, optimizer, timing model, power
// coefficients, schema — so the identity should cover all of it:
// SelfIdentity (a hash of the running executable) makes any recompile
// derive fresh addresses, keeping stale reports unreachable exactly like
// stale traces. v2 marks the switch from pre-rendered text blobs to the
// structured encoding.
func ReportKey(experiment string, quick bool, threshold float64, synthetics []string, identity Hash) Key {
	parts := make([]string, 0, 5+len(synthetics))
	parts = append(parts, "report/v2", experiment,
		fmt.Sprintf("quick=%t", quick), fmt.Sprintf("threshold=%g", threshold),
		identity.String())
	parts = append(parts, synthetics...)
	return deriveKey(parts...)
}

// SweepKey addresses one experiment's encoded threshold sweep
// (harness.EncodeSweep): ReportKey's dimensions with the whole canonical
// %g-rendered grid in place of the single threshold. The per-threshold
// cells inside the sweep are additionally stored under their own
// ReportKey addresses — the grid document is a view; the cells are the
// content-addressed unit of reuse.
func SweepKey(experiment string, quick bool, thresholds []float64, synthetics []string, identity Hash) Key {
	grid := make([]string, len(thresholds))
	for i, th := range thresholds {
		grid[i] = fmt.Sprintf("%g", th)
	}
	parts := make([]string, 0, 5+len(synthetics))
	parts = append(parts, "sweep/v1", experiment,
		fmt.Sprintf("quick=%t", quick), "thresholds="+strings.Join(grid, ","),
		identity.String())
	parts = append(parts, synthetics...)
	return deriveKey(parts...)
}

// selfIdentity caches the hash of the running executable.
var selfIdentity struct {
	once sync.Once
	hash Hash
}

// SelfIdentity returns the SHA-256 of the running executable, the
// broadest available code identity: any rebuild — a changed coefficient,
// a new formatter — yields a different hash. Errors (no readable
// executable path) degrade to the zero hash, which is still consistent
// within the process.
func SelfIdentity() Hash {
	selfIdentity.once.Do(func() {
		exe, err := os.Executable()
		if err != nil {
			return
		}
		data, err := os.ReadFile(exe)
		if err != nil {
			return
		}
		selfIdentity.hash = sha256.Sum256(data)
	})
	return selfIdentity.hash
}

// ProgramIdentity hashes everything that determines a program's retirement
// stream: the instruction image, the entry function, and the initial data
// segment and memory geometry. Two programs with equal identities replay
// each other's traces; any single-bit difference in code or data yields a
// different identity and therefore a different trace address.
func ProgramIdentity(p *prog.Program) Hash {
	h := sha256.New()
	var buf [8]byte
	w64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	w64(uint64(len(p.Ins)))
	for i := range p.Ins {
		in := &p.Ins[i]
		packed := uint64(in.Op) | uint64(in.Width)<<8 |
			uint64(in.Rd)<<16 | uint64(in.Ra)<<24 | uint64(in.Rb)<<32
		if in.HasImm {
			packed |= 1 << 40
		}
		w64(packed)
		w64(uint64(in.Imm))
		w64(uint64(in.Target))
	}
	entry := p.Funcs[p.Entry]
	w64(uint64(entry.Start))
	w64(uint64(p.DataBase))
	w64(uint64(p.MemSize))
	w64(uint64(len(p.Data)))
	h.Write(p.Data)
	var out Hash
	h.Sum(out[:0])
	return out
}
