package store

import (
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"opgate/internal/emu"
	"opgate/internal/prog"
)

// ParseSize parses a byte-size budget for -store-limit style flags: a
// plain integer, or an integer with a k/M/G/T binary-unit suffix (an
// optional iB/B tail is accepted, so 2G, 2GiB and 2147483648 agree).
func ParseSize(s string) (int64, error) {
	t := strings.TrimSpace(s)
	lower := strings.ToLower(t)
	shift := 0
	for i, unit := range []string{"k", "m", "g", "t"} {
		for _, tail := range []string{unit + "ib", unit + "b", unit} {
			if strings.HasSuffix(lower, tail) {
				t = t[:len(t)-len(tail)]
				shift = 10 * (i + 1)
				break
			}
		}
		if shift != 0 {
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("store: bad size %q", s)
	}
	if n < 0 || n > (1<<62)>>shift {
		return 0, fmt.Errorf("store: size %q out of range", s)
	}
	return n << shift, nil
}

// Store is a content-addressed artifact cache rooted at a directory. All
// methods are safe for concurrent use; the root may also be shared between
// processes (writes are atomic renames, so readers never see a partial
// object — the LRU budget is then enforced independently by each writer).
type Store struct {
	root  string
	limit int64 // byte budget; <= 0 means unlimited
	fs    FS    // the filesystem underneath (osFS outside of chaos tests)

	mu   sync.Mutex // serializes writes and the eviction sweep
	size int64      // cached resident bytes (tracked only when limit > 0)

	hits, misses, puts, putErrors, evictions atomic.Int64
}

// Stats is a point-in-time snapshot of store traffic.
type Stats struct {
	Hits      int64 // Get found the object
	Misses    int64 // Get found nothing usable (absent, corrupt, mismatched)
	Puts      int64 // objects written
	PutErrors int64 // writes that failed (the pipeline continues uncached)
	Evictions int64 // objects removed by the LRU sweep
}

// Open creates (if needed) and opens a store rooted at dir with the given
// byte budget (limit <= 0 disables eviction).
func Open(dir string, limit int64) (*Store, error) {
	return OpenFS(dir, limit, osFS{})
}

// OpenFS is Open over an explicit filesystem — the chaos-test entry point
// (pair it with a FaultFS to inject disk misbehavior into a live store).
func OpenFS(dir string, limit int64, fs FS) (*Store, error) {
	for _, sub := range []string{"objects", "tmp"} {
		if err := fs.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: open %s: %w", dir, err)
		}
	}
	s := &Store{root: dir, limit: limit, fs: fs}
	s.sweepStaleTemps()
	if limit > 0 {
		// Seed the resident-size tracker so Put only pays a directory
		// sweep when the budget is actually exceeded. Other processes
		// sharing the root can drift this number; the eviction sweep
		// recomputes it exactly.
		s.size, _ = s.Size()
	}
	return s, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// staleTempAge is how old an orphaned staging file must be before Open
// reclaims it; younger ones may belong to another live process sharing
// the root mid-Put.
const staleTempAge = time.Hour

// sweepStaleTemps reclaims staging files left by crashed writers — they
// live outside objects/, so neither the size tracker nor the LRU sweep
// would ever account for them.
func (s *Store) sweepStaleTemps() {
	dir := filepath.Join(s.root, "tmp")
	entries, err := s.fs.ReadDir(dir)
	if err != nil {
		return
	}
	cutoff := time.Now().Add(-staleTempAge)
	for _, e := range entries {
		if info, err := e.Info(); err == nil && info.ModTime().Before(cutoff) {
			_ = s.fs.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// Stats returns a snapshot of the traffic counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Puts:      s.puts.Load(),
		PutErrors: s.putErrors.Load(),
		Evictions: s.evictions.Load(),
	}
}

// objectPath maps a key to its file. Keys are validated hex (ParseKey) or
// derived in-process, so the join cannot escape the objects directory.
func (s *Store) objectPath(key Key) string {
	return filepath.Join(s.root, "objects", string(key))
}

// Get returns the object stored under key, touching its recency. A missing
// object is (nil, false); read errors count as misses — the store
// accelerates the pipeline and must never fail it.
func (s *Store) Get(key Key) ([]byte, bool) {
	path := s.objectPath(key)
	data, err := s.fs.ReadFile(path)
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	now := time.Now()
	_ = s.fs.Chtimes(path, now, now) // LRU touch; best-effort
	s.hits.Add(1)
	return data, true
}

// Put stores data under key via a temp file (synced before the atomic
// rename) and fsyncs the objects directory afterwards — rename without a
// parent-directory fsync can lose the entry on power failure, which would
// silently undermine the store's durability claim. The sweep back under
// the byte budget follows.
func (s *Store) Put(key Key, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var replaced int64
	if s.limit > 0 {
		if info, err := s.fs.Stat(s.objectPath(key)); err == nil {
			replaced = info.Size()
		}
	}
	f, err := s.fs.CreateTemp(filepath.Join(s.root, "tmp"), "put-*")
	if err != nil {
		s.putErrors.Add(1)
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	tmp := f.Name()
	_, werr := f.Write(data)
	if werr == nil {
		werr = f.Sync()
	}
	cerr := f.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = s.fs.Rename(tmp, s.objectPath(key))
	}
	if werr != nil {
		s.fs.Remove(tmp)
		s.putErrors.Add(1)
		return fmt.Errorf("store: put %s: %w", key, werr)
	}
	if derr := s.fs.SyncDir(filepath.Join(s.root, "objects")); derr != nil {
		// The object is installed and valid — readers can use it now — but
		// its directory entry may not survive a power cut. Surface the
		// degraded durability without undoing a good write.
		s.putErrors.Add(1)
		return fmt.Errorf("store: put %s: sync dir: %w", key, derr)
	}
	s.puts.Add(1)
	if s.limit > 0 {
		s.size += int64(len(data)) - replaced
		if s.size > s.limit {
			s.evictLocked(key)
		}
	}
	return nil
}

// Delete removes the object stored under key, if any.
func (s *Store) Delete(key Key) {
	_ = s.fs.Remove(s.objectPath(key))
}

// Size returns the total bytes resident in the objects directory.
func (s *Store) Size() (int64, error) {
	entries, err := s.fs.ReadDir(filepath.Join(s.root, "objects"))
	if err != nil {
		return 0, err
	}
	var total int64
	for _, e := range entries {
		if info, err := e.Info(); err == nil {
			total += info.Size()
		}
	}
	return total, nil
}

// evictLocked removes least-recently-used objects until the store fits its
// budget again, re-deriving the exact resident size from the directory
// (the running total is only a trigger — it can drift when several
// processes share the root). The object just written (keep) survives the
// sweep even when it alone exceeds the budget: evicting the artifact the
// caller is about to rely on would make the budget self-defeating.
func (s *Store) evictLocked(keep Key) {
	dir := filepath.Join(s.root, "objects")
	entries, err := s.fs.ReadDir(dir)
	if err != nil {
		return
	}
	type obj struct {
		name  string
		size  int64
		mtime time.Time
	}
	var objs []obj
	var total int64
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			continue
		}
		objs = append(objs, obj{e.Name(), info.Size(), info.ModTime()})
		total += info.Size()
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].mtime.Before(objs[j].mtime) })
	for _, o := range objs {
		if total <= s.limit {
			break
		}
		if o.name == string(keep) {
			continue
		}
		if s.fs.Remove(filepath.Join(dir, o.name)) == nil {
			total -= o.size
			s.evictions.Add(1)
		}
	}
	s.size = total
}

// GetTrace returns the packed trace stored under key, decoded and bound to
// p. Any defect — absent, truncated, corrupted, wrong identity, records
// that do not validate against p — is a miss: the unusable object is
// dropped and the caller re-emulates.
func (s *Store) GetTrace(key Key, p *prog.Program, identity Hash) (*emu.Trace, bool) {
	data, ok := s.Get(key)
	if !ok {
		return nil, false
	}
	tr, err := DecodeTrace(data, p, identity)
	if err != nil {
		s.Delete(key)
		s.hits.Add(-1) // reclassify: the object was not usable
		s.misses.Add(1)
		return nil, false
	}
	return tr, true
}

// PutTrace serializes and stores a trace captured from a binary with the
// given identity.
func (s *Store) PutTrace(key Key, t *emu.Trace, identity Hash) error {
	return s.Put(key, EncodeTrace(t, identity))
}
