package store

import (
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"opgate/internal/emu"
	"opgate/internal/prog"
)

// ParseSize parses a byte-size budget for -store-limit style flags: a
// plain integer, or an integer with a k/M/G/T binary-unit suffix (an
// optional iB/B tail is accepted, so 2G, 2GiB and 2147483648 agree).
func ParseSize(s string) (int64, error) {
	t := strings.TrimSpace(s)
	lower := strings.ToLower(t)
	shift := 0
	for i, unit := range []string{"k", "m", "g", "t"} {
		for _, tail := range []string{unit + "ib", unit + "b", unit} {
			if strings.HasSuffix(lower, tail) {
				t = t[:len(t)-len(tail)]
				shift = 10 * (i + 1)
				break
			}
		}
		if shift != 0 {
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("store: bad size %q", s)
	}
	if n < 0 || n > (1<<62)>>shift {
		return 0, fmt.Errorf("store: size %q out of range", s)
	}
	return n << shift, nil
}

// Backend is the raw object tier under a Store: a content-addressed
// blob cache keyed by Key. Implementations are an accelerator only and
// must uphold the degradation contract — a fault (disk misbehavior, a
// dead peer, a torn response) reads as a miss, never as an error the
// simulation pipeline has to care about; only Put surfaces errors, and
// callers treat those as best-effort. Implementations must be safe for
// concurrent use.
//
// DirBackend is the local directory tier, Tiered composes a local
// backend in front of a remote one, and the opgate/client package
// provides an HTTP backend speaking opgated's /v1/objects API. The
// trace/report codec helpers layer on top via Store.
type Backend interface {
	// Get returns the object stored under key; ok is false on a miss
	// (absent, unreadable, or unreachable — faults are misses).
	Get(key Key) ([]byte, bool)
	// Put stores data under key. Errors are surfaced for accounting but
	// callers treat writes as best-effort.
	Put(key Key, data []byte) error
	// Delete removes the object stored under key, if any (best-effort).
	Delete(key Key)
	// Stats returns a snapshot of the backend's traffic counters.
	Stats() Stats
}

// Stats is a point-in-time snapshot of store traffic. The tiered fields
// stay zero for flat backends.
type Stats struct {
	Hits      int64 // Get found the object
	Misses    int64 // Get found nothing usable (absent, corrupt, mismatched)
	Puts      int64 // objects written
	PutErrors int64 // writes that failed (the pipeline continues uncached)
	Evictions int64 // objects removed by the LRU sweep

	// Rejects counts objects a Store's codec helpers found unusable
	// after a raw hit (decode failure, identity mismatch); each one is
	// reclassified hit → miss in this snapshot.
	Rejects int64 `json:",omitempty"`

	// Tiered traffic (Tiered backends only): where hits landed and how
	// the asynchronous remote write-back fared.
	LocalHits       int64 `json:",omitempty"`
	RemoteHits      int64 `json:",omitempty"`
	WriteBacks      int64 `json:",omitempty"`
	WriteBackErrors int64 `json:",omitempty"`
	WriteBackDrops  int64 `json:",omitempty"`
}

// DirBackend is the content-addressed directory tier rooted at a local
// directory. All methods are safe for concurrent use; the root may also
// be shared between processes (writes are atomic renames, so readers
// never see a partial object — the LRU budget is then enforced
// independently by each writer).
type DirBackend struct {
	root  string
	limit int64 // byte budget; <= 0 means unlimited
	fs    FS    // the filesystem underneath (osFS outside of chaos tests)

	mu   sync.Mutex // serializes writes and the eviction sweep
	size int64      // cached resident bytes (tracked only when limit > 0)

	hits, misses, puts, putErrors, evictions atomic.Int64
}

// OpenDir creates (if needed) and opens a directory backend rooted at
// dir with the given byte budget (limit <= 0 disables eviction).
func OpenDir(dir string, limit int64) (*DirBackend, error) {
	return OpenDirFS(dir, limit, osFS{})
}

// OpenDirFS is OpenDir over an explicit filesystem — the chaos-test
// entry point (pair it with a FaultFS to inject disk misbehavior into a
// live store).
func OpenDirFS(dir string, limit int64, fs FS) (*DirBackend, error) {
	for _, sub := range []string{"objects", "tmp"} {
		if err := fs.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: open %s: %w", dir, err)
		}
	}
	b := &DirBackend{root: dir, limit: limit, fs: fs}
	b.sweepStaleTemps()
	if limit > 0 {
		// Seed the resident-size tracker so Put only pays a directory
		// sweep when the budget is actually exceeded. Other processes
		// sharing the root can drift this number; the eviction sweep
		// recomputes it exactly.
		b.size, _ = b.Size()
	}
	return b, nil
}

// Root returns the backend's root directory.
func (b *DirBackend) Root() string { return b.root }

// staleTempAge is how old an orphaned staging file must be before Open
// reclaims it; younger ones may belong to another live process sharing
// the root mid-Put.
const staleTempAge = time.Hour

// sweepStaleTemps reclaims staging files left by crashed writers — they
// live outside objects/, so neither the size tracker nor the LRU sweep
// would ever account for them.
func (b *DirBackend) sweepStaleTemps() {
	dir := filepath.Join(b.root, "tmp")
	entries, err := b.fs.ReadDir(dir)
	if err != nil {
		return
	}
	cutoff := time.Now().Add(-staleTempAge)
	for _, e := range entries {
		if info, err := e.Info(); err == nil && info.ModTime().Before(cutoff) {
			_ = b.fs.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// Stats returns a snapshot of the traffic counters.
func (b *DirBackend) Stats() Stats {
	return Stats{
		Hits:      b.hits.Load(),
		Misses:    b.misses.Load(),
		Puts:      b.puts.Load(),
		PutErrors: b.putErrors.Load(),
		Evictions: b.evictions.Load(),
	}
}

// objectPath maps a key to its file. Keys are validated hex (ParseKey) or
// derived in-process, so the join cannot escape the objects directory.
func (b *DirBackend) objectPath(key Key) string {
	return filepath.Join(b.root, "objects", string(key))
}

// Get returns the object stored under key, touching its recency. A missing
// object is (nil, false); read errors count as misses — the store
// accelerates the pipeline and must never fail it.
func (b *DirBackend) Get(key Key) ([]byte, bool) {
	path := b.objectPath(key)
	data, err := b.fs.ReadFile(path)
	if err != nil {
		b.misses.Add(1)
		return nil, false
	}
	now := time.Now()
	_ = b.fs.Chtimes(path, now, now) // LRU touch; best-effort
	b.hits.Add(1)
	return data, true
}

// Put stores data under key via a temp file (synced before the atomic
// rename) and fsyncs the objects directory afterwards — rename without a
// parent-directory fsync can lose the entry on power failure, which would
// silently undermine the store's durability claim. The sweep back under
// the byte budget follows.
func (b *DirBackend) Put(key Key, data []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	var replaced int64
	if b.limit > 0 {
		if info, err := b.fs.Stat(b.objectPath(key)); err == nil {
			replaced = info.Size()
		}
	}
	f, err := b.fs.CreateTemp(filepath.Join(b.root, "tmp"), "put-*")
	if err != nil {
		b.putErrors.Add(1)
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	tmp := f.Name()
	_, werr := f.Write(data)
	if werr == nil {
		werr = f.Sync()
	}
	cerr := f.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = b.fs.Rename(tmp, b.objectPath(key))
	}
	if werr != nil {
		b.fs.Remove(tmp)
		b.putErrors.Add(1)
		return fmt.Errorf("store: put %s: %w", key, werr)
	}
	if derr := b.fs.SyncDir(filepath.Join(b.root, "objects")); derr != nil {
		// The object is installed and valid — readers can use it now — but
		// its directory entry may not survive a power cut. Surface the
		// degraded durability without undoing a good write.
		b.putErrors.Add(1)
		return fmt.Errorf("store: put %s: sync dir: %w", key, derr)
	}
	b.puts.Add(1)
	if b.limit > 0 {
		b.size += int64(len(data)) - replaced
		if b.size > b.limit {
			b.evictLocked(key)
		}
	}
	return nil
}

// Delete removes the object stored under key, if any.
func (b *DirBackend) Delete(key Key) {
	_ = b.fs.Remove(b.objectPath(key))
}

// Size returns the total bytes resident in the objects directory.
func (b *DirBackend) Size() (int64, error) {
	entries, err := b.fs.ReadDir(filepath.Join(b.root, "objects"))
	if err != nil {
		return 0, err
	}
	var total int64
	for _, e := range entries {
		if info, err := e.Info(); err == nil {
			total += info.Size()
		}
	}
	return total, nil
}

// evictLocked removes least-recently-used objects until the store fits its
// budget again, re-deriving the exact resident size from the directory
// (the running total is only a trigger — it can drift when several
// processes share the root). The object just written (keep) survives the
// sweep even when it alone exceeds the budget: evicting the artifact the
// caller is about to rely on would make the budget self-defeating.
func (b *DirBackend) evictLocked(keep Key) {
	dir := filepath.Join(b.root, "objects")
	entries, err := b.fs.ReadDir(dir)
	if err != nil {
		return
	}
	type obj struct {
		name  string
		size  int64
		mtime time.Time
	}
	var objs []obj
	var total int64
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			continue
		}
		objs = append(objs, obj{e.Name(), info.Size(), info.ModTime()})
		total += info.Size()
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].mtime.Before(objs[j].mtime) })
	for _, o := range objs {
		if total <= b.limit {
			break
		}
		if o.name == string(keep) {
			continue
		}
		if b.fs.Remove(filepath.Join(dir, o.name)) == nil {
			total -= o.size
			b.evictions.Add(1)
		}
	}
	b.size = total
}

// Store layers the trace/report codec helpers over any Backend: raw
// blobs come straight from the backend; GetTrace/PutTrace add the
// versioned codec, and any object the codec rejects is dropped and
// reclassified as a miss (the miss-on-any-defect contract holds
// regardless of the tier underneath).
type Store struct {
	Backend
	rejects atomic.Int64
}

// NewStore wraps a Backend with the codec helpers. Sessions and the
// opgated service consume stores, not raw backends, so every tier
// composition — plain directory, HTTP peer, tiered — plugs in here.
func NewStore(b Backend) *Store { return &Store{Backend: b} }

// Open creates (if needed) and opens a directory-backed store rooted at
// dir with the given byte budget (limit <= 0 disables eviction).
func Open(dir string, limit int64) (*Store, error) {
	b, err := OpenDir(dir, limit)
	if err != nil {
		return nil, err
	}
	return NewStore(b), nil
}

// OpenFS is Open over an explicit filesystem — the chaos-test entry point
// (pair it with a FaultFS to inject disk misbehavior into a live store).
func OpenFS(dir string, limit int64, fs FS) (*Store, error) {
	b, err := OpenDirFS(dir, limit, fs)
	if err != nil {
		return nil, err
	}
	return NewStore(b), nil
}

// Dir returns the directory backend underneath, when the store is a
// plain directory store (Open/OpenFS); nil for other backends.
func (s *Store) Dir() *DirBackend {
	b, _ := s.Backend.(*DirBackend)
	return b
}

// Stats returns the backend's counters with the codec rejects folded in:
// a raw hit the codec refused reads as the miss it effectively was.
func (s *Store) Stats() Stats {
	st := s.Backend.Stats()
	r := s.rejects.Load()
	st.Hits -= r
	st.Misses += r
	st.Rejects = r
	return st
}

// GetTrace returns the packed trace stored under key, decoded and bound to
// p. Any defect — absent, truncated, corrupted, wrong identity, records
// that do not validate against p — is a miss: the unusable object is
// dropped and the caller re-emulates.
func (s *Store) GetTrace(key Key, p *prog.Program, identity Hash) (*emu.Trace, bool) {
	data, ok := s.Get(key)
	if !ok {
		return nil, false
	}
	tr, err := DecodeTrace(data, p, identity)
	if err != nil {
		s.Delete(key)
		s.rejects.Add(1) // reclassify: the object was not usable
		return nil, false
	}
	return tr, true
}

// PutTrace serializes and stores a trace captured from a binary with the
// given identity.
func (s *Store) PutTrace(key Key, t *emu.Trace, identity Hash) error {
	return s.Put(key, EncodeTrace(t, identity))
}
