package store

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// memBackend is an in-memory Backend test double whose fault behavior is
// scriptable: failGets makes every Get miss, failPuts makes every Put
// error.
type memBackend struct {
	mu       sync.Mutex
	objects  map[Key][]byte
	failGets bool
	failPuts bool

	hits, misses, puts, putErrors atomic_
}

// atomic_ shortens the counter plumbing for the double; it is not the
// production pattern.
type atomic_ struct {
	mu sync.Mutex
	n  int64
}

func (a *atomic_) add() { a.mu.Lock(); a.n++; a.mu.Unlock() }
func (a *atomic_) get() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.n
}

func newMemBackend() *memBackend {
	return &memBackend{objects: make(map[Key][]byte)}
}

func (m *memBackend) Get(key Key) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failGets {
		m.misses.add()
		return nil, false
	}
	data, ok := m.objects[key]
	if !ok {
		m.misses.add()
		return nil, false
	}
	m.hits.add()
	return append([]byte(nil), data...), true
}

func (m *memBackend) Put(key Key, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failPuts {
		m.putErrors.add()
		return errors.New("memBackend: injected put failure")
	}
	m.objects[key] = append([]byte(nil), data...)
	m.puts.add()
	return nil
}

func (m *memBackend) Delete(key Key) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.objects, key)
}

func (m *memBackend) Stats() Stats {
	return Stats{
		Hits: m.hits.get(), Misses: m.misses.get(),
		Puts: m.puts.get(), PutErrors: m.putErrors.get(),
	}
}

func (m *memBackend) setFailGets(v bool) { m.mu.Lock(); m.failGets = v; m.mu.Unlock() }
func (m *memBackend) setFailPuts(v bool) { m.mu.Lock(); m.failPuts = v; m.mu.Unlock() }

func (m *memBackend) has(key Key) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.objects[key]
	return ok
}

// TestTieredReadThroughAndWriteBack: a Put lands locally at once and
// reaches the remote tier asynchronously; a local miss is filled from
// the remote tier so the next read is local.
func TestTieredReadThroughAndWriteBack(t *testing.T) {
	local, remote := newMemBackend(), newMemBackend()
	tr := NewTiered(local, remote, 8)
	defer tr.Close()

	key := deriveKey("tiered", "wb")
	if err := tr.Put(key, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if !local.has(key) {
		t.Fatal("put did not land in the local tier synchronously")
	}
	tr.Flush()
	if !remote.has(key) {
		t.Fatal("write-back never reached the remote tier")
	}

	// Evict locally; the composed Get must read through and refill.
	local.Delete(key)
	data, ok := tr.Get(key)
	if !ok || string(data) != "payload" {
		t.Fatalf("read-through miss: %q/%v", data, ok)
	}
	if !local.has(key) {
		t.Fatal("remote hit did not fill the local tier")
	}
	if _, ok := tr.Get(key); !ok {
		t.Fatal("refilled object not served locally")
	}

	st := tr.Stats()
	if st.RemoteHits != 1 || st.LocalHits != 1 || st.WriteBacks != 1 {
		t.Fatalf("tiered stats drifted: %+v", st)
	}
	if st.Hits != st.LocalHits+st.RemoteHits {
		t.Fatalf("Hits != LocalHits+RemoteHits: %+v", st)
	}
}

// TestTieredRemoteFaultIsLocalMiss: with the remote tier failing every
// Get and Put, the composed backend behaves exactly like its local tier
// — absent objects are misses (never errors) and writes still succeed
// locally with the failed write-backs merely counted.
func TestTieredRemoteFaultIsLocalMiss(t *testing.T) {
	local, remote := newMemBackend(), newMemBackend()
	remote.setFailGets(true)
	remote.setFailPuts(true)
	tr := NewTiered(local, remote, 8)
	defer tr.Close()

	key := deriveKey("tiered", "fault")
	if _, ok := tr.Get(key); ok {
		t.Fatal("hit out of nowhere")
	}
	if err := tr.Put(key, []byte("v")); err != nil {
		t.Fatalf("local put failed because the remote tier is down: %v", err)
	}
	if data, ok := tr.Get(key); !ok || string(data) != "v" {
		t.Fatal("local round-trip broken by remote faults")
	}
	tr.Flush()
	st := tr.Stats()
	if st.WriteBackErrors != 1 || st.WriteBacks != 0 {
		t.Fatalf("failed write-back not accounted: %+v", st)
	}
	if st.Misses != 1 || st.PutErrors != 0 {
		t.Fatalf("remote faults leaked into the composed contract: %+v", st)
	}

	// Remote recovers: the next write reaches it again.
	remote.setFailPuts(false)
	key2 := deriveKey("tiered", "recovered")
	if err := tr.Put(key2, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	tr.Flush()
	if !remote.has(key2) {
		t.Fatal("write-back did not resume after the remote recovered")
	}
}

// gatedBackend wedges every Put until the gate opens — a remote tier
// that has stopped making progress without erroring.
type gatedBackend struct {
	Backend
	gate chan struct{}
}

func (g *gatedBackend) Put(key Key, data []byte) error {
	<-g.gate
	return g.Backend.Put(key, data)
}

// TestTieredWriteBackOverflowDrops: a saturated write-back queue drops
// writes (counted) instead of blocking Put — the remote tier can never
// apply backpressure to the pipeline.
func TestTieredWriteBackOverflowDrops(t *testing.T) {
	local, remote := newMemBackend(), newMemBackend()
	gated := &gatedBackend{Backend: remote, gate: make(chan struct{})}
	tr := NewTiered(local, gated, 1)

	// The loop wedges on the first write-back it dequeues; one more fits
	// in the 1-slot queue. Of 4 puts at least 2 must drop, and none may
	// block.
	const puts = 4
	for i := 0; i < puts; i++ {
		if err := tr.Put(deriveKey("ovf", fmt.Sprint(i)), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	close(gated.gate)
	tr.Close() // drains what was queued
	st := tr.Stats()
	if st.WriteBackDrops < puts-2 {
		t.Fatalf("full queue dropped only %d of %d oversubscribed write-backs", st.WriteBackDrops, puts)
	}
	if st.WriteBacks+st.WriteBackDrops != puts {
		t.Fatalf("write-backs (%d) + drops (%d) != %d puts", st.WriteBacks, st.WriteBackDrops, puts)
	}
	if st.Puts != puts || st.PutErrors != 0 {
		t.Fatalf("local writes disturbed by queue pressure: %+v", st)
	}
}

// TestStoreOverTieredBackend: the Store codec helpers compose with a
// Tiered backend — a trace written through the store is served from the
// remote tier after a local eviction, and a corrupt remote object is
// still reclassified as a miss.
func TestStoreOverTieredBackend(t *testing.T) {
	local, remote := newMemBackend(), newMemBackend()
	tiered := NewTiered(local, remote, 8)
	defer tiered.Close()
	s := NewStore(tiered)

	p := mustMiniProgram()
	id := ProgramIdentity(p)
	trc := capture(t, p)
	key := TraceKey("tiered", "base", "train", id)
	if err := s.PutTrace(key, trc, id); err != nil {
		t.Fatal(err)
	}
	tiered.Flush()
	local.Delete(key)
	if got, ok := s.GetTrace(key, p, id); !ok || got.Len() != trc.Len() {
		t.Fatal("trace not served through the remote tier")
	}

	// Corrupt the object in both tiers: the codec must reject it, drop it
	// everywhere, and reclassify the raw hit as a miss.
	blob, _ := remote.Get(key)
	blob[len(blob)-1] ^= 0xFF
	_ = local.Put(key, blob)
	_ = remote.Put(key, blob)
	pre := s.Stats()
	if _, ok := s.GetTrace(key, p, id); ok {
		t.Fatal("corrupt tiered object served as a trace")
	}
	post := s.Stats()
	if post.Hits != pre.Hits || post.Misses != pre.Misses+1 || post.Rejects != pre.Rejects+1 {
		t.Fatalf("tiered defect not reclassified: pre %+v post %+v", pre, post)
	}
	if local.has(key) || remote.has(key) {
		t.Fatal("corrupt object not dropped from both tiers")
	}
}
