package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"math"

	"opgate/internal/emu"
	"opgate/internal/prog"
)

// The trace codec, wire format version 1. A packed trace's struct-of-arrays
// columns serialize almost directly: the file is a fixed header, the nine
// record columns stored whole-trace contiguously (little-endian), and a
// CRC-64 trailer.
//
//	offset   size  field
//	0        4     magic "OGTR"
//	4        2     format version (1)
//	6        2     reserved (0)
//	8        32    program identity (ProgramIdentity of the traced binary)
//	40       8     event count n
//	48       4n    Idx    int32   static instruction index
//	48+4n    4n    Next   int32   next instruction executed
//	48+8n    n     Op     uint8
//	48+9n    n     WBytes uint8
//	48+10n   n     Flags  uint8
//	48+11n   8n    Addr   int64
//	48+19n   8n    Value  int64
//	48+27n   8n    SrcA   int64
//	48+35n   8n    SrcB   int64
//	end-8    8     CRC-64/ECMA of every preceding byte
//
// The encoding is canonical — no padding, no trailing slack — so
// re-encoding a decoded trace reproduces the input bit-for-bit (the fuzz
// target leans on that). Decode refuses anything it cannot vouch for:
// wrong magic or version, identity mismatch, truncation, trailing bytes,
// checksum failure, and records that do not validate against the program.
const (
	codecMagic   = "OGTR"
	codecVersion = 1

	codecHeaderSize  = 4 + 2 + 2 + 32 + 8
	codecTrailerSize = 8

	// codecRecBytes is the wire footprint of one record: the nine columns
	// above (2×4 + 3×1 + 4×8).
	codecRecBytes = 43
)

// crcTable is the CRC-64/ECMA table the trailer uses.
var crcTable = crc64.MakeTable(crc64.ECMA)

// EncodeTrace serializes a packed trace captured from a binary with the
// given identity.
func EncodeTrace(t *emu.Trace, identity Hash) []byte {
	n := int(t.Len())
	buf := make([]byte, codecHeaderSize+n*codecRecBytes+codecTrailerSize)
	copy(buf, codecMagic)
	binary.LittleEndian.PutUint16(buf[4:], codecVersion)
	copy(buf[8:], identity[:])
	binary.LittleEndian.PutUint64(buf[40:], uint64(n))

	cols := colOffsets(n)
	pos := 0
	t.Records(emu.RecFunc(func(b emu.RecBatch) {
		for i := 0; i < b.Len(); i++ {
			binary.LittleEndian.PutUint32(buf[cols.idx+4*(pos+i):], uint32(b.Idx[i]))
			binary.LittleEndian.PutUint32(buf[cols.next+4*(pos+i):], uint32(b.Next[i]))
			buf[cols.op+pos+i] = b.Op[i]
			buf[cols.wbytes+pos+i] = b.WBytes[i]
			buf[cols.flags+pos+i] = b.Flags[i]
			binary.LittleEndian.PutUint64(buf[cols.addr+8*(pos+i):], uint64(b.Addr[i]))
			binary.LittleEndian.PutUint64(buf[cols.value+8*(pos+i):], uint64(b.Value[i]))
			binary.LittleEndian.PutUint64(buf[cols.srcA+8*(pos+i):], uint64(b.SrcA[i]))
			binary.LittleEndian.PutUint64(buf[cols.srcB+8*(pos+i):], uint64(b.SrcB[i]))
		}
		pos += b.Len()
	}))

	crc := crc64.Checksum(buf[:len(buf)-codecTrailerSize], crcTable)
	binary.LittleEndian.PutUint64(buf[len(buf)-codecTrailerSize:], crc)
	return buf
}

// DecodeTrace deserializes a trace and binds it to p, refusing any input
// whose header, identity, length, checksum, or records do not check out.
// It never panics on malformed input.
func DecodeTrace(data []byte, p *prog.Program, identity Hash) (*emu.Trace, error) {
	recs, stored, err := DecodeTraceRecords(data)
	if err != nil {
		return nil, err
	}
	if stored != identity {
		return nil, fmt.Errorf("store: trace identity mismatch (stored %x…, want %x…)", stored[:4], identity[:4])
	}
	tr, err := emu.NewTraceFromRecords(p, recs)
	if err != nil {
		return nil, fmt.Errorf("store: trace does not validate against program: %w", err)
	}
	return tr, nil
}

// DecodeTraceRecords validates a codec blob's framing — magic, version,
// reserved bytes, length, checksum — and returns its whole-trace record
// columns together with the identity the header declares, without
// binding either to a program. This is the ingestion half of the codec:
// a caller that has no program yet (tracework synthesizes one from the
// records) decodes here, then validates the records against whatever
// program it derives. DecodeTrace composes this with the identity check
// and emu.NewTraceFromRecords. Never panics on malformed input.
func DecodeTraceRecords(data []byte) (emu.RecBatch, Hash, error) {
	var stored Hash
	if len(data) < codecHeaderSize+codecTrailerSize {
		return emu.RecBatch{}, stored, fmt.Errorf("store: trace blob truncated (%d bytes)", len(data))
	}
	if string(data[:4]) != codecMagic {
		return emu.RecBatch{}, stored, fmt.Errorf("store: bad trace magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != codecVersion {
		return emu.RecBatch{}, stored, fmt.Errorf("store: unsupported trace format version %d (want %d)", v, codecVersion)
	}
	if data[6] != 0 || data[7] != 0 {
		// Encoding is canonical: accepting nonzero reserved bytes would
		// admit blobs that do not re-encode bit-identically.
		return emu.RecBatch{}, stored, fmt.Errorf("store: nonzero reserved header bytes %x", data[6:8])
	}
	copy(stored[:], data[8:40])
	events := binary.LittleEndian.Uint64(data[40:])
	if events > math.MaxInt64/codecRecBytes {
		return emu.RecBatch{}, stored, fmt.Errorf("store: absurd trace event count %d", events)
	}
	want := uint64(codecHeaderSize) + events*codecRecBytes + codecTrailerSize
	if uint64(len(data)) != want {
		return emu.RecBatch{}, stored, fmt.Errorf("store: trace blob is %d bytes, want %d for %d events", len(data), want, events)
	}
	crcOff := len(data) - codecTrailerSize
	if got, sum := crc64.Checksum(data[:crcOff], crcTable), binary.LittleEndian.Uint64(data[crcOff:]); got != sum {
		return emu.RecBatch{}, stored, fmt.Errorf("store: trace checksum mismatch (%#x != %#x)", got, sum)
	}

	n := int(events)
	cols := colOffsets(n)
	recs := emu.RecBatch{
		Idx: make([]int32, n), Next: make([]int32, n),
		Op: data[cols.op : cols.op+n], WBytes: data[cols.wbytes : cols.wbytes+n],
		Flags: data[cols.flags : cols.flags+n],
		Addr:  make([]int64, n), Value: make([]int64, n),
		SrcA: make([]int64, n), SrcB: make([]int64, n),
	}
	for i := 0; i < n; i++ {
		recs.Idx[i] = int32(binary.LittleEndian.Uint32(data[cols.idx+4*i:]))
		recs.Next[i] = int32(binary.LittleEndian.Uint32(data[cols.next+4*i:]))
		recs.Addr[i] = int64(binary.LittleEndian.Uint64(data[cols.addr+8*i:]))
		recs.Value[i] = int64(binary.LittleEndian.Uint64(data[cols.value+8*i:]))
		recs.SrcA[i] = int64(binary.LittleEndian.Uint64(data[cols.srcA+8*i:]))
		recs.SrcB[i] = int64(binary.LittleEndian.Uint64(data[cols.srcB+8*i:]))
	}
	return recs, stored, nil
}

// colOffsets returns the file offsets of the nine record columns for an
// n-event trace.
func colOffsets(n int) (c struct{ idx, next, op, wbytes, flags, addr, value, srcA, srcB int }) {
	c.idx = codecHeaderSize
	c.next = c.idx + 4*n
	c.op = c.next + 4*n
	c.wbytes = c.op + n
	c.flags = c.wbytes + n
	c.addr = c.flags + n
	c.value = c.addr + 8*n
	c.srcA = c.value + 8*n
	c.srcB = c.srcA + 8*n
	return c
}
