package store

import (
	"io"
	"os"
	"time"
)

// FS abstracts every filesystem operation the store performs, so tests
// can substitute a fault-injecting implementation (FaultFS) and prove the
// degradation contract: any disk misbehavior — full disks, torn renames,
// partial writes, undeletable files — must read as a cache miss served by
// re-emulation, never as an error surfaced to the pipeline or a corrupt
// object mistaken for a good one.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	ReadDir(name string) ([]os.DirEntry, error)
	ReadFile(name string) ([]byte, error)
	Stat(name string) (os.FileInfo, error)
	Chtimes(name string, atime, mtime time.Time) error
	Remove(name string) error
	Rename(oldpath, newpath string) error
	CreateTemp(dir, pattern string) (File, error)
	// OpenFile is the append-path entry point (the job journal writes
	// through it); flag and perm carry os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// SyncDir fsyncs a directory: a rename is only durable across power
	// loss once the parent directory's entry for it has reached disk.
	SyncDir(name string) error
}

// File is the slice of *os.File the store's staged writes and the job
// journal's appends need.
type File interface {
	io.Writer
	Name() string
	Sync() error
	Close() error
}

// OSFS returns the production filesystem FS — the seam's default, for
// callers outside the package (the job journal) that need it explicitly.
func OSFS() FS { return osFS{} }

// osFS is the production FS: the real filesystem, verbatim.
type osFS struct{}

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }
func (osFS) Chtimes(name string, a, m time.Time) error    { return os.Chtimes(name, a, m) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
