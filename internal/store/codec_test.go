package store

import (
	"bytes"
	"encoding/binary"
	"hash/crc64"
	"reflect"
	"testing"

	"opgate/internal/asm"
	"opgate/internal/emu"
	"opgate/internal/prog"
	"opgate/internal/progen"
)

// miniProgram is a small but field-complete workload: memory traffic,
// taken and not-taken branches, a call, and output, so every record column
// carries nontrivial values. Its trace (~60 events) keeps the committed
// fuzz corpus small.
const miniProgram = `
.data
buf: .space 64
.text
.func main
	lda r1, =buf
	lda r2, 0(rz)
loop:
	st.w r2, 0(r1)
	ld.w r3, 0(r1)
	jsr bump
	add r2, r2, #1
	cmplt r4, r2, #10
	bne r4, loop
	out.b r2
	halt
.func bump
	add r5, r5, #2
	ret
`

// mustMiniProgram assembles miniProgram (shared with the fuzz target,
// which has no *testing.T at seed time).
func mustMiniProgram() *prog.Program {
	p, err := asm.Assemble(miniProgram)
	if err != nil {
		panic(err)
	}
	return p
}

// capture runs p once under a TraceRecorder and returns the packed trace.
func capture(t *testing.T, p *prog.Program) *emu.Trace {
	t.Helper()
	tr, err := captureTrace(p)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func captureTrace(p *prog.Program) (*emu.Trace, error) {
	rec := emu.NewTraceRecorder(p)
	m := emu.New(p)
	m.Sink = rec
	if err := m.Run(); err != nil {
		return nil, err
	}
	return rec.Trace()
}

// collectEvents replays a trace into a flat event slice.
func collectEvents(tr *emu.Trace) []emu.Event {
	var events []emu.Event
	tr.Replay(emu.FuncSink(func(ev emu.Event) { events = append(events, ev) }))
	return events
}

// fixCRC recomputes the trailer after a deliberate header/payload edit.
func fixCRC(b []byte) {
	crc := crc64.Checksum(b[:len(b)-codecTrailerSize], crcTable)
	binary.LittleEndian.PutUint64(b[len(b)-codecTrailerSize:], crc)
}

// TestTraceCodecRoundTrip is the codec's tentpole invariant: decoding an
// encoded trace yields a trace whose replay is field-for-field the
// original stream, and whose re-encoding is bit-identical to the first.
func TestTraceCodecRoundTrip(t *testing.T) {
	progs := map[string]*prog.Program{"mini": mustMiniProgram()}
	// A medium synthetic crosses the packed-chunk boundary (>32768 events),
	// exercising multi-chunk encode/restore.
	mp, err := progen.Generate(progen.Families()[0], 7, progen.Medium, false)
	if err != nil {
		t.Fatal(err)
	}
	progs["medium-synthetic"] = mp

	for name, p := range progs {
		t.Run(name, func(t *testing.T) {
			tr := capture(t, p)
			id := ProgramIdentity(p)
			enc := EncodeTrace(tr, id)

			dec, err := DecodeTrace(enc, p, id)
			if err != nil {
				t.Fatalf("decode of a fresh encoding failed: %v", err)
			}
			if dec.Len() != tr.Len() || dec.Bytes() != tr.Bytes() {
				t.Fatalf("decoded trace shape drifted: len %d/%d, bytes %d/%d",
					dec.Len(), tr.Len(), dec.Bytes(), tr.Bytes())
			}
			if got, want := collectEvents(dec), collectEvents(tr); !reflect.DeepEqual(got, want) {
				t.Fatal("decoded trace replays a different event stream")
			}
			if re := EncodeTrace(dec, id); !bytes.Equal(re, enc) {
				t.Fatalf("re-encode is not bit-identical (%d vs %d bytes)", len(re), len(enc))
			}
		})
	}
}

// TestDecodeRejectsDefects feeds the decoder every class of damaged input
// and expects a clean error each time — never a panic, never acceptance.
func TestDecodeRejectsDefects(t *testing.T) {
	p := mustMiniProgram()
	id := ProgramIdentity(p)
	enc := EncodeTrace(capture(t, p), id)

	cases := map[string]func() []byte{
		"empty":             func() []byte { return nil },
		"truncated-header":  func() []byte { return enc[:codecHeaderSize-1] },
		"truncated-payload": func() []byte { return enc[:len(enc)-codecTrailerSize-5] },
		"trailing-garbage":  func() []byte { return append(append([]byte{}, enc...), 0) },
		"bad-magic": func() []byte {
			b := append([]byte{}, enc...)
			b[0] ^= 0xFF
			fixCRC(b)
			return b
		},
		"bad-version": func() []byte {
			b := append([]byte{}, enc...)
			binary.LittleEndian.PutUint16(b[4:], codecVersion+1)
			fixCRC(b)
			return b
		},
		"reserved-bytes": func() []byte {
			b := append([]byte{}, enc...)
			b[6] = 0xAB
			fixCRC(b)
			return b
		},
		"identity-mismatch": func() []byte {
			b := append([]byte{}, enc...)
			b[8] ^= 0xFF
			fixCRC(b)
			return b
		},
		"event-count-lies": func() []byte {
			b := append([]byte{}, enc...)
			n := binary.LittleEndian.Uint64(b[40:])
			binary.LittleEndian.PutUint64(b[40:], n+1)
			fixCRC(b)
			return b
		},
		"absurd-event-count": func() []byte {
			b := append([]byte{}, enc...)
			binary.LittleEndian.PutUint64(b[40:], ^uint64(0))
			fixCRC(b)
			return b
		},
		"checksum-mismatch": func() []byte {
			b := append([]byte{}, enc...)
			b[codecHeaderSize] ^= 0x01 // payload flip, stale trailer
			return b
		},
		"index-out-of-range": func() []byte {
			b := append([]byte{}, enc...)
			binary.LittleEndian.PutUint32(b[codecHeaderSize:], 1<<20)
			fixCRC(b)
			return b
		},
	}
	for name, make := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := DecodeTrace(make(), p, id); err == nil {
				t.Fatal("decoder accepted damaged input")
			}
		})
	}
}

// TestDecodeRejectsWrongProgram rebinding: a trace must not decode against
// a program it was not captured from, even when the caller vouches for the
// stored identity bytes.
func TestDecodeRejectsWrongProgram(t *testing.T) {
	p := mustMiniProgram()
	id := ProgramIdentity(p)
	enc := EncodeTrace(capture(t, p), id)

	other, err := asm.Assemble(".text\n.func main\n\tadd r1, r1, #1\n\thalt\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeTrace(enc, other, id); err == nil {
		t.Fatal("decoder bound a trace to a program it was not captured from")
	}
}

// TestProgramIdentity pins the identity's sensitivity: identical rebuilds
// agree; any code or data difference disagrees.
func TestProgramIdentity(t *testing.T) {
	a, b := mustMiniProgram(), mustMiniProgram()
	if ProgramIdentity(a) != ProgramIdentity(b) {
		t.Fatal("identical programs derived different identities")
	}
	mutated := mustMiniProgram()
	mutated.Ins[0].Imm++
	if ProgramIdentity(a) == ProgramIdentity(mutated) {
		t.Fatal("instruction mutation did not change the identity")
	}
	dataMutated := mustMiniProgram()
	dataMutated.Data = append(append([]byte{}, dataMutated.Data...), 1)
	if ProgramIdentity(a) == ProgramIdentity(dataMutated) {
		t.Fatal("data mutation did not change the identity")
	}
}

// TestKeyDerivation pins the key scheme: parts are domain-separated, and
// every tuple element lands in the address.
func TestKeyDerivation(t *testing.T) {
	id := ProgramIdentity(mustMiniProgram())
	base := TraceKey("compress", "base", "train", id)
	if _, err := ParseKey(string(base)); err != nil {
		t.Fatalf("derived key does not parse: %v", err)
	}
	for name, other := range map[string]Key{
		"workload": TraceKey("gcc", "base", "train", id),
		"variant":  TraceKey("compress", "vrp", "train", id),
		"class":    TraceKey("compress", "base", "ref", id),
		"identity": TraceKey("compress", "base", "train", Hash{1}),
		"kind":     ReportKey("compress", false, 0, []string{"base", "train"}, id),
	} {
		if other == base {
			t.Fatalf("%s does not contribute to the trace key", name)
		}
	}
	if ReportKey("fig8", true, 50, nil, id) == ReportKey("fig8", true, 50, []string{"syn:narrow/small/1"}, id) {
		t.Fatal("synthetic list does not contribute to the report key")
	}
	if ReportKey("fig8", true, 50, []string{"ab", "c"}, id) == ReportKey("fig8", true, 50, []string{"a", "bc"}, id) {
		t.Fatal("report key parts are not length-separated")
	}
	if ReportKey("fig8", true, 50, nil, id) == ReportKey("fig8", true, 50, nil, Hash{1}) {
		t.Fatal("code identity does not contribute to the report key")
	}
	if SelfIdentity() != SelfIdentity() || SelfIdentity() == (Hash{}) {
		t.Fatal("SelfIdentity is unstable or degenerate in-process")
	}
	if _, err := ParseKey("not-a-key"); err == nil {
		t.Fatal("ParseKey accepted a malformed key")
	}
	if _, err := ParseKey(string(base[:32])); err == nil {
		t.Fatal("ParseKey accepted a short key")
	}
}
