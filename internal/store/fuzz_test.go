package store

import (
	"bytes"
	"encoding/binary"
	"testing"

	"opgate/internal/emu"
)

// FuzzTraceCodec throws arbitrary bytes at the trace decoder. The
// invariants: the decoder never panics; anything it rejects is an error;
// anything it accepts is the canonical encoding of a valid trace —
// re-encoding reproduces the input bit-for-bit, and replay delivers
// exactly the advertised number of events without faulting. Seed corpus:
// one valid encoding plus damaged derivatives under
// testdata/fuzz/FuzzTraceCodec, regenerable with
// `go test ./internal/store -run TestFuzzCorpusSeeds -regen-corpus`.
func FuzzTraceCodec(f *testing.F) {
	p := mustMiniProgram()
	id := ProgramIdentity(p)
	for _, seed := range fuzzCorpusSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := DecodeTrace(data, p, id)
		if err != nil {
			return // rejected cleanly
		}
		re := EncodeTrace(tr, id)
		if !bytes.Equal(re, data) {
			t.Fatalf("decoder accepted a non-canonical blob: re-encode is %d bytes, input %d", len(re), len(data))
		}
		var replayed int64
		tr.Replay(emu.FuncSink(func(emu.Event) { replayed++ }))
		if replayed != tr.Len() {
			t.Fatalf("replay delivered %d events, trace advertises %d", replayed, tr.Len())
		}
	})
}

// fuzzCorpusSeeds returns the deterministic seed inputs: the canonical
// encoding of the mini workload's trace, plus one representative of each
// damage class so the fuzzer starts at every rejection branch.
func fuzzCorpusSeeds() [][]byte {
	p := mustMiniProgram()
	tr, err := captureTrace(p)
	if err != nil {
		panic(err)
	}
	enc := EncodeTrace(tr, ProgramIdentity(p))

	truncated := append([]byte{}, enc[:len(enc)/2]...)
	flipped := append([]byte{}, enc...)
	flipped[codecHeaderSize] ^= 0x01
	countLies := append([]byte{}, enc...)
	binary.LittleEndian.PutUint64(countLies[40:], binary.LittleEndian.Uint64(countLies[40:])+1)
	fixCRC(countLies)

	return [][]byte{
		enc,
		truncated,
		flipped,
		countLies,
		[]byte(codecMagic),
		{},
	}
}
