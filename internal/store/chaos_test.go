package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// chaosStore opens a store over a FaultFS at a fresh root.
func chaosStore(t *testing.T, limit int64) (*Store, *FaultFS) {
	t.Helper()
	ff := NewFaultFS()
	s, err := OpenFS(t.TempDir(), limit, ff)
	if err != nil {
		t.Fatal(err)
	}
	return s, ff
}

// listDir returns the file names under a store subdirectory.
func listDir(t *testing.T, s *Store, sub string) []string {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join(s.Dir().root, sub))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names
}

// TestChaosPutFaultsDegradeToMiss: every write-path fault class makes Put
// fail cleanly (counted, ErrInjected surfaced to the caller who treats it
// as best-effort) without leaving an object or staging litter behind, and
// the store keeps working the moment the fault clears.
func TestChaosPutFaultsDegradeToMiss(t *testing.T) {
	for name, arm := range map[string]func(*FaultFS){
		"write-error": func(ff *FaultFS) { ff.FailWrites(1, false) },
		"short-write": func(ff *FaultFS) { ff.FailWrites(1, true) },
		"rename":      func(ff *FaultFS) { ff.FailRenames(1) },
	} {
		t.Run(name, func(t *testing.T) {
			s, ff := chaosStore(t, 0)
			arm(ff)
			key := deriveKey("chaos", name)
			err := s.Put(key, []byte("payload"))
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("Put under %s fault returned %v, want ErrInjected", name, err)
			}
			if st := s.Stats(); st.PutErrors != 1 || st.Puts != 0 {
				t.Fatalf("stats after faulty put: %+v", st)
			}
			if _, ok := s.Get(key); ok {
				t.Fatal("faulty put left a readable object")
			}
			if names := listDir(t, s, "objects"); len(names) != 0 {
				t.Fatalf("faulty put left objects behind: %v", names)
			}
			if names := listDir(t, s, "tmp"); len(names) != 0 {
				t.Fatalf("faulty put left staging litter: %v", names)
			}
			if ff.Injected() == 0 {
				t.Fatal("scenario injected no faults")
			}
			ff.Clear()
			if err := s.Put(key, []byte("payload")); err != nil {
				t.Fatalf("put after clearing faults: %v", err)
			}
			if data, ok := s.Get(key); !ok || string(data) != "payload" {
				t.Fatal("store did not recover once the fault cleared")
			}
		})
	}
}

// TestChaosTornRenameIsAMiss: a rename that "succeeds" but installs a
// truncated object must never serve that object as a trace — decode
// validation reclassifies it as a miss and drops it, and a clean re-put
// repopulates.
func TestChaosTornRenameIsAMiss(t *testing.T) {
	s, ff := chaosStore(t, 0)
	p := mustMiniProgram()
	id := ProgramIdentity(p)
	tr := capture(t, p)
	key := TraceKey("torn", "base", "train", id)

	ff.TearRenames(1)
	if err := s.PutTrace(key, tr, id); err != nil {
		t.Fatalf("torn rename should report success, got %v", err)
	}
	// The raw object is resident but truncated; GetTrace must refuse it.
	if _, ok := s.GetTrace(key, p, id); ok {
		t.Fatal("torn object decoded as a valid trace")
	}
	if _, err := os.Stat(s.Dir().objectPath(key)); !os.IsNotExist(err) {
		t.Fatal("torn object was not dropped after failing validation")
	}
	ff.Clear()
	if err := s.PutTrace(key, tr, id); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.GetTrace(key, p, id); !ok || got.Len() != tr.Len() {
		t.Fatal("clean re-put did not read back")
	}
}

// TestChaosRemoveFaults: undeletable files must not break eviction, the
// corrupt-object drop, or Delete — the store stays functional and the
// unusable object still reads as a miss even though it cannot be removed.
func TestChaosRemoveFaults(t *testing.T) {
	s, ff := chaosStore(t, 0)
	p := mustMiniProgram()
	id := ProgramIdentity(p)
	tr := capture(t, p)
	key := TraceKey("undeletable", "base", "train", id)
	if err := s.PutTrace(key, tr, id); err != nil {
		t.Fatal(err)
	}
	// Corrupt the object in place, then make removes fail: GetTrace must
	// still be a miss despite the failed drop.
	blob, err := os.ReadFile(s.Dir().objectPath(key))
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-1] ^= 0xFF
	if err := os.WriteFile(s.Dir().objectPath(key), blob, 0o644); err != nil {
		t.Fatal(err)
	}
	ff.FailRemoves(1)
	if _, ok := s.GetTrace(key, p, id); ok {
		t.Fatal("corrupt object served as a hit under remove faults")
	}
	if _, err := os.Stat(s.Dir().objectPath(key)); err != nil {
		t.Fatal("remove fault did not actually block the drop")
	}
	ff.Clear()
	if _, ok := s.GetTrace(key, p, id); ok {
		t.Fatal("dropped corrupt object still readable")
	}
	if err := s.PutTrace(key, tr, id); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetTrace(key, p, id); !ok {
		t.Fatal("store did not recover after remove faults cleared")
	}
}

// TestChaosEvictionUnderRemoveFaults: an over-budget store whose removes
// all fail stays over budget without erroring; when removes recover the
// next write sweeps it back under.
func TestChaosEvictionUnderRemoveFaults(t *testing.T) {
	const objSize = 512
	s, ff := chaosStore(t, 2*objSize)
	blob := bytes.Repeat([]byte{0xCD}, objSize)
	ff.FailRemoves(1)
	for i := 0; i < 4; i++ {
		if err := s.Put(deriveKey("evict", fmt.Sprint(i)), blob); err != nil {
			t.Fatalf("put %d under remove faults: %v", i, err)
		}
	}
	if size, err := s.Dir().Size(); err != nil || size < 4*objSize {
		t.Fatalf("remove faults should have pinned every object: size %d err %v", size, err)
	}
	ff.Clear()
	if err := s.Put(deriveKey("evict", "final"), blob); err != nil {
		t.Fatal(err)
	}
	if size, err := s.Dir().Size(); err != nil || size > 2*objSize {
		t.Fatalf("store did not sweep back under budget after faults cleared: size %d err %v", size, err)
	}
	if s.Stats().Evictions == 0 {
		t.Fatal("no evictions recorded by the recovery sweep")
	}
}

// TestChaosIntermittentFaultsNeverCorrupt is the store-level chaos
// property: under intermittent faults of every class at once, concurrent
// puts and gets never observe a partial or foreign object — every read is
// either a miss or the exact bytes some writer put.
func TestChaosIntermittentFaultsNeverCorrupt(t *testing.T) {
	p := mustMiniProgram()
	id := ProgramIdentity(p)
	tr := capture(t, p)
	blob := EncodeTrace(tr, id)

	s, ff := chaosStore(t, int64(6*len(blob)))
	ff.FailWrites(7, true)
	ff.FailRenames(5)
	ff.FailRemoves(3)

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := TraceKey(fmt.Sprintf("w%d", (w+i)%5), "base", "train", id)
				switch i % 3 {
				case 0:
					if err := s.PutTrace(key, tr, id); err != nil && !errors.Is(err, ErrInjected) {
						t.Errorf("put: non-injected error %v", err)
						return
					}
				case 1:
					if got, ok := s.GetTrace(key, p, id); ok && got.Len() != tr.Len() {
						t.Errorf("trace read back with %d events, want %d", got.Len(), tr.Len())
						return
					}
				default:
					if data, ok := s.Get(key); ok && !bytes.Equal(data, blob) {
						t.Error("raw read returned a partial or foreign object")
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if ff.Injected() == 0 {
		t.Fatal("chaos run injected no faults")
	}
	// Once the weather clears, the same root serves clean round-trips.
	ff.Clear()
	key := TraceKey("aftermath", "base", "train", id)
	if err := s.PutTrace(key, tr, id); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.GetTrace(key, p, id); !ok || got.Len() != tr.Len() {
		t.Fatal("store unusable after faults cleared")
	}
}

// TestChaosDirentLossAfterPut: Put fsyncs the objects directory after the
// atomic rename, so a power cut immediately after a successful Put cannot
// lose the directory entry — the durability half of the store's claim
// that a stored object survives the process.
func TestChaosDirentLossAfterPut(t *testing.T) {
	s, ff := chaosStore(t, 0)
	key := deriveKey("durable", "object")
	if err := s.Put(key, []byte("survives power loss")); err != nil {
		t.Fatal(err)
	}
	if lost := ff.DropUnsyncedRenames(); lost != 0 {
		t.Fatalf("power cut lost %d objects Put should have made durable", lost)
	}
	if data, ok := s.Get(key); !ok || string(data) != "survives power loss" {
		t.Fatal("object gone after simulated power cut")
	}

	// Control: the knob really does model the hazard — a rename with no
	// directory sync afterwards is lost by the same power cut.
	raw := deriveKey("volatile", "object")
	tmp := filepath.Join(s.Dir().root, "tmp", "control")
	if err := os.WriteFile(tmp, []byte("unsynced"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ff.Rename(tmp, s.Dir().objectPath(raw)); err != nil {
		t.Fatal(err)
	}
	if lost := ff.DropUnsyncedRenames(); lost != 1 {
		t.Fatalf("control rename without dir sync survived the power cut (lost %d)", lost)
	}
	if _, ok := s.Get(raw); ok {
		t.Fatal("unsynced control object still readable after the power cut")
	}
}

// TestChaosSyncFaults: failed durability barriers degrade exactly like
// other put failures — counted, surfaced to the best-effort caller, never
// corrupting — and the already-installed object of a failed directory
// sync remains valid and readable (only its crash durability is in doubt).
func TestChaosSyncFaults(t *testing.T) {
	s, ff := chaosStore(t, 0)
	key := deriveKey("sync", "file")

	// File-sync failure: staged write aborts cleanly, no object, no litter.
	ff.FailSyncs(1)
	if err := s.Put(key, []byte("payload")); !errors.Is(err, ErrInjected) {
		t.Fatalf("Put under file-sync fault returned %v, want ErrInjected", err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("failed file sync left a readable object")
	}
	if names := listDir(t, s, "tmp"); len(names) != 0 {
		t.Fatalf("failed file sync left staging litter: %v", names)
	}

	// Directory-sync failure: the second Sync call in a Put is the SyncDir;
	// fault only that one. The object is installed and valid — the error
	// reports degraded durability, not a bad write.
	ff.Clear()
	ff.FailSyncs(2)
	err := s.Put(key, []byte("installed"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Put under dir-sync fault returned %v, want ErrInjected", err)
	}
	if data, ok := s.Get(key); !ok || string(data) != "installed" {
		t.Fatal("dir-sync failure lost a validly installed object")
	}
	if st := s.Stats(); st.PutErrors != 2 {
		t.Fatalf("stats after sync faults: %+v", st)
	}
	ff.Clear()
	if err := s.Put(key, []byte("recovered")); err != nil {
		t.Fatalf("put after sync faults cleared: %v", err)
	}
	if data, ok := s.Get(key); !ok || string(data) != "recovered" {
		t.Fatal("store did not recover once sync faults cleared")
	}
}
