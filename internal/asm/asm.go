package asm

import (
	"fmt"
	"strconv"
	"strings"

	"opgate/internal/isa"
	"opgate/internal/prog"
)

// Assemble parses OG64 textual assembly into a Program.
//
// Syntax (one statement per line; ';' or '#' start comments):
//
//	.data                      switch to data segment
//	sym: .space N              reserve N zero bytes
//	sym: .byte 1, 2, 3         initialised bytes
//	sym: .word 100, -7         initialised 64-bit words
//	.text                      switch to code segment
//	.func name                 begin function "name"
//	label:                     code label
//	add.w r1, r2, r3           register ALU op (width suffix optional, default q)
//	add.b r1, r2, #42          immediate ALU op
//	lda r1, 8(r2)              address arithmetic
//	lda r1, =sym               load address of data symbol
//	ld.b r1, 0(r2)             load (widths b/h/w/q)
//	st.w r3, 4(r2)             store
//	mskl.h r1, r2              keep low 2 bytes
//	sext.b r1, r2              sign-extend low byte
//	beq r1, label              conditional branch
//	br label                   unconditional branch
//	jsr func                   call (links r26)
//	ret                        return through r26
//	out.w r1                   emit output
//	halt                       stop
func Assemble(src string) (*prog.Program, error) {
	b := NewBuilder()
	inData := false
	sawFunc := false

	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := raw
		// ';' starts a comment ('#' marks immediates, so it cannot).
		if i := strings.Index(line, ";"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("line %d: %s", ln+1, fmt.Sprintf(format, args...))
		}

		// Labels (possibly followed by a directive/instruction).
		var label string
		if i := strings.Index(line, ":"); i >= 0 && !strings.ContainsAny(line[:i], " \t") {
			label = line[:i]
			line = strings.TrimSpace(line[i+1:])
		}

		if strings.HasPrefix(line, ".") {
			fields := strings.Fields(line)
			switch fields[0] {
			case ".data":
				inData = true
			case ".text":
				inData = false
			case ".func":
				if len(fields) != 2 {
					return nil, fail(".func needs a name")
				}
				b.Func(fields[1])
				sawFunc = true
			case ".space":
				if !inData {
					return nil, fail(".space outside .data")
				}
				n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, ".space")))
				if err != nil {
					return nil, fail("bad .space size: %v", err)
				}
				b.Space(label, n)
				label = ""
			case ".byte", ".word":
				if !inData {
					return nil, fail("%s outside .data", fields[0])
				}
				args := strings.TrimSpace(line[len(fields[0]):])
				var vals []int64
				for _, s := range strings.Split(args, ",") {
					v, err := strconv.ParseInt(strings.TrimSpace(s), 0, 64)
					if err != nil {
						return nil, fail("bad value %q: %v", s, err)
					}
					vals = append(vals, v)
				}
				if fields[0] == ".byte" {
					bs := make([]byte, len(vals))
					for i, v := range vals {
						bs[i] = byte(v)
					}
					b.Bytes(label, bs)
				} else {
					b.Words(label, vals)
				}
				label = ""
			default:
				return nil, fail("unknown directive %s", fields[0])
			}
			if label != "" && inData {
				return nil, fail("data label %q without allocation", label)
			}
			if label != "" {
				b.Label(label)
			}
			continue
		}

		if label != "" {
			if inData {
				return nil, fail("data label %q without directive", label)
			}
			b.Label(label)
		}
		if line == "" {
			continue
		}
		if inData {
			return nil, fail("instruction in .data segment")
		}
		if !sawFunc {
			// Implicit main function for bare programs.
			b.Func("main")
			sawFunc = true
		}
		if err := parseIns(b, line); err != nil {
			return nil, fail("%v", err)
		}
	}
	return b.Build()
}

// parseIns parses one instruction statement into the builder.
func parseIns(b *Builder, line string) error {
	mnemonic := line
	rest := ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		mnemonic, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	base := mnemonic
	width := isa.W64
	if i := strings.Index(mnemonic, "."); i >= 0 {
		base = mnemonic[:i]
		w, ok := isa.ParseWidth(mnemonic[i+1:])
		if !ok {
			return fmt.Errorf("bad width suffix in %q", mnemonic)
		}
		width = w
	}
	op, ok := isa.ParseOp(base)
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", base)
	}

	args := splitArgs(rest)
	switch op {
	case isa.OpHALT:
		b.Halt()
		return nil
	case isa.OpRET:
		b.Ret()
		return nil
	case isa.OpBR:
		if len(args) != 1 {
			return fmt.Errorf("br needs a label")
		}
		b.Branch(args[0])
		return nil
	case isa.OpJSR:
		if len(args) != 1 {
			return fmt.Errorf("jsr needs a label")
		}
		b.Call(args[0])
		return nil
	case isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBGT, isa.OpBLE:
		if len(args) != 2 {
			return fmt.Errorf("%s needs reg, label", base)
		}
		r, err := parseReg(args[0])
		if err != nil {
			return err
		}
		b.CondBranch(op, r, args[1])
		return nil
	case isa.OpOUT:
		if len(args) != 1 {
			return fmt.Errorf("out needs a register")
		}
		r, err := parseReg(args[0])
		if err != nil {
			return err
		}
		b.Out(width, r)
		return nil
	case isa.OpLDA:
		if len(args) != 2 {
			return fmt.Errorf("lda needs rd, imm(ra) or rd, =sym")
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		if strings.HasPrefix(args[1], "=") {
			b.LoadAddr(rd, args[1][1:])
			return b.Err()
		}
		off, ra, err := parseMem(args[1])
		if err != nil {
			return err
		}
		b.Lda(rd, ra, off)
		return nil
	case isa.OpLD:
		if len(args) != 2 {
			return fmt.Errorf("ld needs rd, off(ra)")
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		off, ra, err := parseMem(args[1])
		if err != nil {
			return err
		}
		b.Load(width, rd, ra, off)
		return nil
	case isa.OpST:
		if len(args) != 2 {
			return fmt.Errorf("st needs rb, off(ra)")
		}
		rb, err := parseReg(args[0])
		if err != nil {
			return err
		}
		off, ra, err := parseMem(args[1])
		if err != nil {
			return err
		}
		b.Store(width, rb, ra, off)
		return nil
	case isa.OpMSKL, isa.OpSEXT:
		if len(args) != 2 {
			return fmt.Errorf("%s needs rd, ra", base)
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		ra, err := parseReg(args[1])
		if err != nil {
			return err
		}
		b.Emit(isa.Instruction{Op: op, Width: width, Rd: rd, Ra: ra})
		return nil
	}

	// Generic three-operand form: rd, ra, rb|#imm.
	if len(args) != 3 {
		return fmt.Errorf("%s needs rd, ra, rb|#imm", base)
	}
	rd, err := parseReg(args[0])
	if err != nil {
		return err
	}
	ra, err := parseReg(args[1])
	if err != nil {
		return err
	}
	if strings.HasPrefix(args[2], "#") {
		imm, err := strconv.ParseInt(args[2][1:], 0, 64)
		if err != nil {
			return fmt.Errorf("bad immediate %q: %v", args[2], err)
		}
		b.OpI(op, width, rd, ra, imm)
		return nil
	}
	rb, err := parseReg(args[2])
	if err != nil {
		return err
	}
	b.Op3(op, width, rd, ra, rb)
	return nil
}

func splitArgs(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseReg(s string) (isa.Reg, error) {
	if s == "rz" {
		return isa.ZeroReg, nil
	}
	switch s {
	case "sp":
		return prog.RegSP, nil
	case "ra":
		return prog.RegLink, nil
	case "rv":
		return prog.RegRet, nil
	}
	if strings.HasPrefix(s, "a") {
		if n, err := strconv.Atoi(s[1:]); err == nil && n >= 0 && n < prog.NumArgRegs {
			return prog.RegArg0 + isa.Reg(n), nil
		}
	}
	if !strings.HasPrefix(s, "r") {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= isa.NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return isa.Reg(n), nil
}

// parseMem parses "off(reg)" or "(reg)" or "off".
func parseMem(s string) (int64, isa.Reg, error) {
	open := strings.Index(s, "(")
	if open < 0 {
		off, err := strconv.ParseInt(s, 0, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("bad address %q", s)
		}
		return off, isa.ZeroReg, nil
	}
	if !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad address %q", s)
	}
	var off int64
	if open > 0 {
		v, err := strconv.ParseInt(s[:open], 0, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("bad offset in %q", s)
		}
		off = v
	}
	r, err := parseReg(s[open+1 : len(s)-1])
	if err != nil {
		return 0, 0, err
	}
	return off, r, nil
}
