// Package asm builds OG64 programs: programmatically via Builder, or from
// textual assembly via Assemble. It also disassembles programs back to
// text. Workloads and tests construct programs with Builder; the cmd tools
// use the textual form.
package asm

import (
	"fmt"

	"opgate/internal/isa"
	"opgate/internal/prog"
)

// DefaultDataBase is the virtual address where the data segment starts.
// It sits above 2^32 so that data addresses are genuinely 33-bit-plus
// values, reproducing the paper's observation that memory addresses need
// 5 bytes (Fig. 12's peak). Programs address data relative to the global
// pointer register (prog.RegGP), which the runtime pins to this base.
const DefaultDataBase = int64(1) << 32

// DefaultMemSize is the default size of the flat data memory (code is not
// addressable). The stack pointer starts at the top and grows down.
const DefaultMemSize = 8 << 20

// Builder assembles a program incrementally. Typical use:
//
//	b := asm.NewBuilder()
//	buf := b.Space("buf", 256)
//	b.Func("main")
//	b.LoadImm(r1, 0)
//	b.Label("loop")
//	...
//	b.CondBranch(isa.OpBNE, r4, "loop")
//	b.Halt()
//	p, err := b.Build()
type Builder struct {
	ins      []isa.Instruction
	funcs    []*prog.Func
	labels   map[string]int
	fixups   []fixup
	data     []byte
	dataSyms map[string]int64
	err      error
}

type fixup struct {
	insIdx int
	label  string
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		labels:   make(map[string]int),
		dataSyms: make(map[string]int64),
	}
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
}

// Err returns the first error recorded by the builder.
func (b *Builder) Err() error { return b.err }

// Func starts a new function at the current position.
func (b *Builder) Func(name string) {
	if len(b.funcs) > 0 {
		last := b.funcs[len(b.funcs)-1]
		last.End = len(b.ins)
		if last.End == last.Start {
			b.fail("asm: function %s is empty", last.Name)
		}
	}
	b.funcs = append(b.funcs, &prog.Func{Name: name, Index: len(b.funcs), Start: len(b.ins)})
	b.Label(name)
}

// Label binds a name to the next instruction index.
func (b *Builder) Label(name string) {
	if prev, dup := b.labels[name]; dup {
		b.fail("asm: duplicate label %q (first at %d)", name, prev)
		return
	}
	b.labels[name] = len(b.ins)
}

// Emit appends a raw instruction and returns its index.
func (b *Builder) Emit(in isa.Instruction) int {
	b.ins = append(b.ins, in)
	return len(b.ins) - 1
}

// InsCount returns the number of instructions emitted so far — the index
// the next emitted instruction will occupy. Phase-structured generators
// use it to record the instruction range each phase body occupies.
func (b *Builder) InsCount() int { return len(b.ins) }

// --- Data segment -----------------------------------------------------

// Space reserves n zero bytes in the data segment under a symbol and
// returns its virtual address.
func (b *Builder) Space(sym string, n int) int64 {
	addr := DefaultDataBase + int64(len(b.data))
	b.data = append(b.data, make([]byte, n)...)
	b.defineData(sym, addr)
	return addr
}

// Bytes places initialised bytes in the data segment.
func (b *Builder) Bytes(sym string, vals []byte) int64 {
	addr := DefaultDataBase + int64(len(b.data))
	b.data = append(b.data, vals...)
	b.defineData(sym, addr)
	return addr
}

// Words places 64-bit little-endian values in the data segment.
func (b *Builder) Words(sym string, vals []int64) int64 {
	addr := DefaultDataBase + int64(len(b.data))
	for _, v := range vals {
		for i := 0; i < 8; i++ {
			b.data = append(b.data, byte(uint64(v)>>(8*i)))
		}
	}
	b.defineData(sym, addr)
	return addr
}

func (b *Builder) defineData(sym string, addr int64) {
	if sym == "" {
		return
	}
	if _, dup := b.dataSyms[sym]; dup {
		b.fail("asm: duplicate data symbol %q", sym)
		return
	}
	b.dataSyms[sym] = addr
}

// DataAddr returns the address of a data symbol.
func (b *Builder) DataAddr(sym string) int64 {
	addr, ok := b.dataSyms[sym]
	if !ok {
		b.fail("asm: unknown data symbol %q", sym)
	}
	return addr
}

// --- Instruction helpers ----------------------------------------------

// LoadImm materialises an arbitrary 64-bit constant into rd. Values that
// fit 32 bits signed take one LDA; wider values use LDA/SLL/OR sequences.
func (b *Builder) LoadImm(rd isa.Reg, v int64) {
	if v >= -(1<<31) && v < 1<<31 {
		b.Emit(isa.Instruction{Op: isa.OpLDA, Width: isa.W64, Rd: rd, Ra: isa.ZeroReg, Imm: v})
		return
	}
	// Build from the top: load the high 32 bits, then shift in the low
	// half as two 16-bit chunks (OR immediates are non-negative, so no
	// sign-extension hazard).
	b.LoadImm(rd, v>>32)
	b.Emit(isa.Instruction{Op: isa.OpSLL, Width: isa.W64, Rd: rd, Ra: rd, Imm: 16, HasImm: true})
	b.Emit(isa.Instruction{Op: isa.OpOR, Width: isa.W64, Rd: rd, Ra: rd, Imm: (v >> 16) & 0xFFFF, HasImm: true})
	b.Emit(isa.Instruction{Op: isa.OpSLL, Width: isa.W64, Rd: rd, Ra: rd, Imm: 16, HasImm: true})
	b.Emit(isa.Instruction{Op: isa.OpOR, Width: isa.W64, Rd: rd, Ra: rd, Imm: v & 0xFFFF, HasImm: true})
}

// Lda emits rd = ra + imm.
func (b *Builder) Lda(rd, ra isa.Reg, imm int64) {
	b.Emit(isa.Instruction{Op: isa.OpLDA, Width: isa.W64, Rd: rd, Ra: ra, Imm: imm})
}

// LoadAddr loads the address of a data symbol, GP-relative (the symbol's
// offset from the data base fits the immediate field; the full 33-bit-plus
// address forms by adding the pinned global pointer).
func (b *Builder) LoadAddr(rd isa.Reg, sym string) {
	b.Lda(rd, prog.RegGP, b.DataAddr(sym)-DefaultDataBase)
}

// Op3 emits a three-register ALU operation.
func (b *Builder) Op3(op isa.Op, w isa.Width, rd, ra, rb isa.Reg) {
	b.Emit(isa.Instruction{Op: op, Width: w, Rd: rd, Ra: ra, Rb: rb})
}

// OpI emits an ALU operation with an immediate second operand.
func (b *Builder) OpI(op isa.Op, w isa.Width, rd, ra isa.Reg, imm int64) {
	b.Emit(isa.Instruction{Op: op, Width: w, Rd: rd, Ra: ra, Imm: imm, HasImm: true})
}

// Load emits rd = mem[ra+off] at the given width.
func (b *Builder) Load(w isa.Width, rd, ra isa.Reg, off int64) {
	b.Emit(isa.Instruction{Op: isa.OpLD, Width: w, Rd: rd, Ra: ra, Imm: off})
}

// Store emits mem[ra+off] = rb at the given width.
func (b *Builder) Store(w isa.Width, rb, ra isa.Reg, off int64) {
	b.Emit(isa.Instruction{Op: isa.OpST, Width: w, Rb: rb, Ra: ra, Imm: off})
}

// Branch emits an unconditional branch to a label.
func (b *Builder) Branch(label string) {
	idx := b.Emit(isa.Instruction{Op: isa.OpBR})
	b.fixups = append(b.fixups, fixup{idx, label})
}

// CondBranch emits a conditional branch on ra to a label.
func (b *Builder) CondBranch(op isa.Op, ra isa.Reg, label string) {
	if !isa.IsCondBranch(op) {
		b.fail("asm: %v is not a conditional branch", op)
		return
	}
	idx := b.Emit(isa.Instruction{Op: op, Ra: ra})
	b.fixups = append(b.fixups, fixup{idx, label})
}

// Call emits a JSR to a function label, linking in RegLink.
func (b *Builder) Call(label string) {
	idx := b.Emit(isa.Instruction{Op: isa.OpJSR, Rd: prog.RegLink})
	b.fixups = append(b.fixups, fixup{idx, label})
}

// Ret emits a return through RegLink.
func (b *Builder) Ret() {
	b.Emit(isa.Instruction{Op: isa.OpRET, Ra: prog.RegLink})
}

// Halt emits program termination.
func (b *Builder) Halt() { b.Emit(isa.Instruction{Op: isa.OpHALT}) }

// Out emits an output of ra's low w bytes.
func (b *Builder) Out(w isa.Width, ra isa.Reg) {
	b.Emit(isa.Instruction{Op: isa.OpOUT, Width: w, Ra: ra})
}

// Build finalises the program: closes the last function, resolves label
// fixups, and runs structural analysis.
func (b *Builder) Build() (*prog.Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.funcs) == 0 {
		return nil, fmt.Errorf("asm: no functions")
	}
	last := b.funcs[len(b.funcs)-1]
	last.End = len(b.ins)
	for _, fx := range b.fixups {
		target, ok := b.labels[fx.label]
		if !ok {
			return nil, fmt.Errorf("asm: undefined label %q", fx.label)
		}
		b.ins[fx.insIdx].Target = target
	}
	p := &prog.Program{
		Ins:      b.ins,
		Funcs:    b.funcs,
		Data:     b.data,
		DataBase: DefaultDataBase,
		MemSize:  DefaultMemSize,
		Labels:   b.labels,
	}
	// Default widths: any zero Width on a width-bearing op means W64.
	for i := range p.Ins {
		if p.Ins[i].Width == 0 {
			p.Ins[i].Width = isa.W64
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := p.Analyze(); err != nil {
		return nil, err
	}
	return p, nil
}
