package asm_test

import (
	"math/rand"
	"strings"
	"testing"

	"opgate/internal/asm"
	"opgate/internal/emu"
	"opgate/internal/isa"
	"opgate/internal/prog"
)

func TestAssembleBasics(t *testing.T) {
	p, err := asm.Assemble(`
.data
tab: .word 1, 2, 3
msg: .byte 104, 105
buf: .space 16
.text
.func main
	lda r1, =tab
	ld.q r2, 8(r1)     ; 2
	out.b r2
	halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Data) != 3*8+2+16 {
		t.Errorf("data segment %d bytes", len(p.Data))
	}
	res, err := emu.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 || res.Output[0] != 2 {
		t.Errorf("output = %v", res.Output)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		".func main\nbogus r1, r2, r3\nhalt\n",    // unknown mnemonic
		".func main\nadd r1, r2\nhalt\n",          // missing operand
		".func main\nbr nowhere\nhalt\n",          // undefined label
		".func main\nadd.z r1, r2, r3\nhalt\n",    // bad width
		".func main\nadd r99, r2, r3\nhalt\n",     // bad register
		".func main\nx: lda r1, 0(rz)\nx: halt\n", // duplicate label
		".data\noops: .space -\n",                 // bad directive arg
	}
	for _, src := range cases {
		if _, err := asm.Assemble(src); err == nil {
			t.Errorf("accepted bad program:\n%s", src)
		}
	}
}

func TestRegisterAliases(t *testing.T) {
	p, err := asm.Assemble(`
.func main
	lda a0, 7(rz)
	jsr f
	out.b rv
	halt
.func f
	add rv, a0, #1
	ret
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := emu.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 || res.Output[0] != 8 {
		t.Errorf("output = %v", res.Output)
	}
}

func TestCommentsDoNotEatImmediates(t *testing.T) {
	p, err := asm.Assemble(".func main\nadd r1, rz, #35 ; a comment\nout.b r1\nhalt\n")
	if err != nil {
		t.Fatal(err)
	}
	res, _ := emu.Execute(p)
	if res.Output[0] != 35 {
		t.Errorf("output = %v", res.Output)
	}
}

// TestDisassembleRoundTrip: disassembling and re-assembling a program
// yields identical behaviour.
func TestDisassembleRoundTrip(t *testing.T) {
	src := `
.func main
	lda r1, 0(rz)
loop:
	add r2, r2, r1
	and.w r2, r2, #4095
	add r1, r1, #1
	cmplt r3, r1, #33
	bne r3, loop
	out.w r2
	halt
`
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	text := asm.Disassemble(p)
	q, err := asm.Assemble(text)
	if err != nil {
		t.Fatalf("reassemble failed: %v\n%s", err, text)
	}
	if err := emu.CheckEquivalence(p, q); err != nil {
		t.Fatalf("roundtrip diverged: %v", err)
	}
}

// TestBuilderLoadImm: arbitrary 64-bit constants materialise correctly.
func TestBuilderLoadImm(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	values := []int64{0, 1, -1, 127, -128, 1 << 31, -(1 << 31), 1<<62 + 12345, -(1 << 62), 0x7FFFFFFFFFFFFFFF}
	for i := 0; i < 30; i++ {
		values = append(values, int64(r.Uint64()))
	}
	for _, v := range values {
		b := asm.NewBuilder()
		b.Func("main")
		b.LoadImm(1, v)
		b.Out(isa.W64, 1)
		b.Halt()
		p, err := b.Build()
		if err != nil {
			t.Fatalf("build for %d: %v", v, err)
		}
		res, err := emu.Execute(p)
		if err != nil {
			t.Fatalf("run for %d: %v", v, err)
		}
		var got int64
		for k := 7; k >= 0; k-- {
			got = got<<8 | int64(res.Output[k])
		}
		if got != v {
			t.Fatalf("LoadImm(%d) produced %d", v, got)
		}
	}
}

func TestBuilderDuplicateDataSymbol(t *testing.T) {
	b := asm.NewBuilder()
	b.Space("x", 8)
	b.Space("x", 8)
	b.Func("main")
	b.Halt()
	if _, err := b.Build(); err == nil {
		t.Error("duplicate data symbol accepted")
	}
}

func TestBuilderGPRelativeAddressing(t *testing.T) {
	b := asm.NewBuilder()
	addr := b.Words("w", []int64{77})
	b.Func("main")
	b.LoadAddr(1, "w")
	b.Load(isa.W64, 2, 1, 0)
	b.Out(isa.W8, 2)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if addr < asm.DefaultDataBase {
		t.Errorf("symbol below data base")
	}
	// The emitted LDA must be GP-relative (its immediate fits 32 bits
	// even though the address exceeds 2^32).
	if p.Ins[p.Funcs[0].Start].Ra != prog.RegGP {
		t.Error("LoadAddr did not use the global pointer")
	}
	res, err := emu.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output[0] != 77 {
		t.Errorf("output = %v", res.Output)
	}
}

func TestDisassembleContainsLabels(t *testing.T) {
	p, _ := asm.Assemble(".func main\nx:\nadd r1, r1, #1\nbne r1, x\nhalt\n")
	text := asm.Disassemble(p)
	if !strings.Contains(text, ".func main") {
		t.Error("missing function directive")
	}
	if !strings.Contains(text, "bne r1,") {
		t.Error("missing branch")
	}
}
