package asm

import (
	"fmt"
	"sort"
	"strings"

	"opgate/internal/isa"
	"opgate/internal/prog"
)

// Disassemble renders the program as readable assembly with synthesised
// labels at branch targets. The output round-trips through Assemble for
// programs whose data segment is empty (data initialisation is emitted as
// directives but symbol names are lost).
func Disassemble(p *prog.Program) string {
	var sb strings.Builder

	// Invert labels for nicer output.
	names := make(map[int][]string)
	for name, idx := range p.Labels {
		names[idx] = append(names[idx], name)
	}
	for idx := range names {
		sort.Strings(names[idx])
	}

	// Synthesise labels for anonymous branch targets.
	targets := make(map[int]string)
	for i := range p.Ins {
		in := &p.Ins[i]
		if !isa.IsBranch(in.Op) || in.Op == isa.OpRET {
			continue
		}
		t := in.Target
		if len(names[t]) > 0 {
			targets[t] = names[t][0]
		} else if _, ok := targets[t]; !ok {
			targets[t] = fmt.Sprintf("L%d", t)
		}
	}

	for _, f := range p.Funcs {
		fmt.Fprintf(&sb, ".func %s\n", f.Name)
		for i := f.Start; i < f.End; i++ {
			if lbl, ok := targets[i]; ok && lbl != f.Name {
				fmt.Fprintf(&sb, "%s:\n", lbl)
			}
			in := p.Ins[i]
			fmt.Fprintf(&sb, "\t%s\n", formatIns(&in, targets))
		}
	}
	return sb.String()
}

// formatIns prints one instruction, substituting label names for targets.
func formatIns(in *isa.Instruction, targets map[int]string) string {
	if isa.IsBranch(in.Op) && in.Op != isa.OpRET {
		lbl := targets[in.Target]
		if lbl == "" {
			lbl = fmt.Sprintf("@%d", in.Target)
		}
		switch in.Op {
		case isa.OpBR:
			return fmt.Sprintf("br %s", lbl)
		case isa.OpJSR:
			return fmt.Sprintf("jsr %s", lbl)
		default:
			return fmt.Sprintf("%s %s, %s", in.Op, in.Ra, lbl)
		}
	}
	return in.String()
}
