package opgate

import (
	"bytes"
	"context"
	"testing"

	"opgate/internal/store"
)

// chaosRun runs one quick-mode experiment on a fresh session bound to st
// (nil = storeless) and returns the session and the canonical report
// encoding — the byte-identity probe used throughout this file.
func chaosRun(t *testing.T, st *Store) (*Session, []byte) {
	t.Helper()
	opts := []Option{WithQuick(true)}
	if st != nil {
		opts = append(opts, WithStore(st))
	}
	sess, err := NewSession(opts...)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sess.Run(context.Background(), "fig2")
	if err != nil {
		t.Fatalf("Run with a faulting store must not surface the fault: %v", err)
	}
	out, err := EncodeReports([]*Report{r})
	if err != nil {
		t.Fatal(err)
	}
	return sess, out
}

// TestSessionChaosStoreFaultsAreInvisible is the degradation contract at
// the public API: whatever the disk does underneath the store — failed or
// torn writes, rename errors, torn renames, failing removes under
// eviction — a Session's reports stay byte-identical to a storeless run,
// served by re-emulation, and Run never returns a store error. After the
// fault clears, a fresh run over the same directory repopulates the store
// and the next run is fully warm.
func TestSessionChaosStoreFaultsAreInvisible(t *testing.T) {
	_, baseline := chaosRun(t, nil)

	classes := map[string]struct {
		arm   func(*store.FaultFS)
		limit int64
	}{
		"write-error":  {arm: func(f *store.FaultFS) { f.FailWrites(1, false) }},
		"short-write":  {arm: func(f *store.FaultFS) { f.FailWrites(1, true) }},
		"rename-error": {arm: func(f *store.FaultFS) { f.FailRenames(1) }},
		"torn-rename":  {arm: func(f *store.FaultFS) { f.TearRenames(1) }},
		// A tiny budget forces eviction sweeps, whose removes then fail.
		"remove-error": {arm: func(f *store.FaultFS) { f.FailRemoves(1) }, limit: 4 << 10},
	}
	for name, tc := range classes {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			ffs := store.NewFaultFS()
			tc.arm(ffs)
			st, err := store.OpenFS(dir, tc.limit, ffs)
			if err != nil {
				t.Fatal(err)
			}

			sess, out := chaosRun(t, st)
			if !bytes.Equal(out, baseline) {
				t.Fatal("reports under store faults differ from the storeless baseline")
			}
			if sess.Emulations() == 0 {
				t.Fatal("faulted run did no emulation — probe broken?")
			}
			if ffs.Injected() == 0 {
				t.Fatalf("%s fault never fired", name)
			}

			// The fault clears: a fresh handle over the same (possibly
			// littered) directory repopulates, still byte-identical.
			ffs.Clear()
			repop, err := store.OpenFS(dir, tc.limit, ffs)
			if err != nil {
				t.Fatal(err)
			}
			if _, out := chaosRun(t, repop); !bytes.Equal(out, baseline) {
				t.Fatal("post-fault repopulating run differs from baseline")
			}
			// Either the directory was left empty/corrupt (repopulated via
			// puts) or the faulted run's objects survived (served as hits) —
			// a run that did neither means the store is wedged.
			if st := repop.Stats(); st.Puts == 0 && st.Hits == 0 {
				t.Fatalf("fault-free run neither stored nor served anything: %+v", st)
			}

			// And the run after that is fully warm: zero emulations.
			warm, err := store.OpenFS(dir, tc.limit, ffs)
			if err != nil {
				t.Fatal(err)
			}
			wsess, out := chaosRun(t, warm)
			if !bytes.Equal(out, baseline) {
				t.Fatal("warm run differs from baseline")
			}
			if tc.limit == 0 {
				if n := wsess.Emulations(); n != 0 {
					t.Fatalf("warm run after recovery performed %d emulations, want 0", n)
				}
			}
		})
	}
}
