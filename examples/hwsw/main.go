// Hwsw: the cooperative hardware/software comparison of §4.6–4.7 on the
// whole suite — software opcode gating (after VRP), the two hardware
// compression schemes, and the combined mode where compiler widths and
// dynamic tags gate together.
//
//	go run ./examples/hwsw
package main

import (
	"fmt"
	"log"

	"opgate"
)

func main() {
	modes := []struct {
		label  string
		gating opgate.GatingMode
		useVRP bool
	}{
		{"software (VRP)", opgate.GateSoftware, true},
		{"hw size", opgate.GateHWSize, false},
		{"hw significance", opgate.GateHWSignificance, false},
		{"cooperative", opgate.GateCooperativeSig, true},
	}

	fmt.Printf("%-10s", "benchmark")
	for _, m := range modes {
		fmt.Printf("%18s", m.label)
	}
	fmt.Println()

	for _, w := range opgate.Workloads() {
		p, err := w.Build(opgate.Ref)
		if err != nil {
			log.Fatal(err)
		}
		opt, err := opgate.Optimize(p, opgate.OptimizeOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s", w.Name)
		for _, m := range modes {
			target := p
			if m.useVRP {
				target = opt.Program
			}
			_, ed2, err := opgate.CompareGating(target, m.gating)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%17.1f%%", 100*ed2)
		}
		fmt.Println()
	}
	fmt.Println("\n(values are energy-delay^2 savings vs the ungated baseline)")
}
