// Imagepipeline: the ijpeg-style scenario from the paper's motivation —
// byte-sized pixels flowing through integer transforms. The example builds
// the ijpeg kernel, compares conventional against useful (proposed) value
// range propagation, and shows where the "useful bits" analysis wins:
// chains feeding masked stores need only the masked bytes.
//
//	go run ./examples/imagepipeline
package main

import (
	"fmt"
	"log"

	"opgate"
)

func main() {
	w, err := opgate.WorkloadByName("ijpeg")
	if err != nil {
		log.Fatal(err)
	}
	p, err := w.Build(opgate.Ref)
	if err != nil {
		log.Fatal(err)
	}

	conv, err := opgate.Optimize(p, opgate.OptimizeOptions{Conventional: true})
	if err != nil {
		log.Fatal(err)
	}
	useful, err := opgate.Optimize(p, opgate.OptimizeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("conventional VRP:", conv.Summary())
	fmt.Println("proposed VRP:    ", useful.Summary())

	for label, prog := range map[string]*opgate.Optimized{
		"conventional": conv, "proposed": useful,
	} {
		energy, ed2, err := opgate.CompareGating(prog.Program, opgate.GateSoftware)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-13s gating: %.1f%% energy, %.1f%% ED^2 saved\n",
			label, 100*energy, 100*ed2)
	}
}
