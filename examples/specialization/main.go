// Specialization: the paper's train/ref methodology on the interpreter
// kernel (m88ksim). The binary with the training input is value-profiled;
// the reference binary is specialized: the simulator's debug-control word
// is almost always zero, so the specialized clone drops its three
// mask-and-branch checks behind a single guard, eliminating instructions
// outright (the paper's Fig. 5 effect).
//
//	go run ./examples/specialization
package main

import (
	"fmt"
	"log"

	"opgate"
)

func main() {
	w, err := opgate.WorkloadByName("m88ksim")
	if err != nil {
		log.Fatal(err)
	}
	trainP, err := w.Build(opgate.Train)
	if err != nil {
		log.Fatal(err)
	}
	refP, err := w.Build(opgate.Ref)
	if err != nil {
		log.Fatal(err)
	}

	spec, err := opgate.Specialize(trainP, refP, opgate.SpecializeOptions{Threshold: 50})
	if err != nil {
		log.Fatal(err)
	}
	r := spec.Result
	fmt.Printf("profiled %d candidate points\n", len(r.Points))
	for _, pt := range r.Points {
		fmt.Printf("  instr %3d  %-11s  range [%d,%d]  freq %.2f  benefit %.0f\n",
			pt.InsIdx, pt.Outcome, pt.Min, pt.Max, pt.Freq, pt.Benefit)
	}
	fmt.Printf("specialized points: %d, cloned instructions: %d, eliminated: %d\n",
		r.NumSpecialized(), r.StaticSpecialized, r.StaticEliminated)

	before, err := opgate.Run(refP)
	if err != nil {
		log.Fatal(err)
	}
	after, err := opgate.Run(spec.Program)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dynamic instructions: %d -> %d (%.1f%% fewer)\n",
		before.Dyn, after.Dyn, 100*(1-float64(after.Dyn)/float64(before.Dyn)))

	energy, ed2, err := opgate.CompareGating(spec.Program, opgate.GateSoftware)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with gating: %.1f%% energy, %.1f%% ED^2 saved vs ungated baseline\n",
		100*energy, 100*ed2)
}
