// Quickstart: build a small program with the assembler, run the binary
// optimizer (value range propagation), and inspect the width assignment.
//
// The kernel is the paper's Figure 1 example: for (i=0; i<100; i++) a[i]=i.
// VRP's loop trip-count analysis bounds the iterator at [0,100], so the
// increment, the scaled index arithmetic and the compare all fit narrow
// opcodes.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"opgate"
)

const src = `
.data
vec: .space 800
.text
.func main
	lda r1, 0(rz)       ; i = 0
loop:
	mul r3, r1, #8      ; scale to a word index
	lda r2, =vec
	add r2, r2, r3
	st.q r1, 0(r2)      ; a[i] = i
	add r1, r1, #1
	cmplt r4, r1, #100
	bne r4, loop
	halt
`

func main() {
	p, err := opgate.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}

	opt, err := opgate.Optimize(p, opgate.OptimizeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("after VRP:", opt.Summary())
	fmt.Println(opgate.Disassemble(opt.Program))

	energy, ed2, err := opgate.CompareGating(opt.Program, opgate.GateSoftware)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("operand gating saves %.1f%% energy, %.1f%% energy-delay^2\n",
		100*energy, 100*ed2)
}
