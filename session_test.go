package opgate

import (
	"context"
	"strings"
	"testing"

	"opgate/internal/store"
)

// TestSessionOptionValidation: bad options fail construction with a
// descriptive error instead of producing a half-configured session.
func TestSessionOptionValidation(t *testing.T) {
	for name, opt := range map[string]Option{
		"negative-workers":  WithWorkers(-1),
		"zero-threshold":    WithThreshold(0),
		"unknown-synthetic": WithSynthetics("syn:nosuchfamily/small/1"),
		"nil-store":         WithStore(nil),
		"nil-backend":       WithBackend(nil),
	} {
		if _, err := NewSession(opt); err == nil {
			t.Errorf("%s: NewSession accepted an invalid option", name)
		}
	}
	if _, err := NewSession(WithQuick(true), WithWorkers(2), WithThreshold(70),
		WithTraceBudget(1<<20), WithSynthetics("syn:narrow/small/1")); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
}

// TestSessionTraceNeedsStore: a "trace:" workload without a store is a
// construction-time error regardless of option order — there would be
// nothing to replay from.
func TestSessionTraceNeedsStore(t *testing.T) {
	if _, err := NewSession(WithSynthetics("trace:orphan")); err == nil ||
		!strings.Contains(err.Error(), "store") {
		t.Errorf("storeless trace session: got %v, want a needs-a-store error", err)
	}
	// With a store the same options construct fine (whether the trace is
	// imported is a lookup-time question, not a construction-time one),
	// in either option order.
	dir := t.TempDir()
	if _, err := NewSession(WithSynthetics("trace:orphan"), WithStoreDir(dir, 0)); err != nil {
		t.Errorf("trace-then-store rejected: %v", err)
	}
	if _, err := NewSession(WithStoreDir(dir, 0), WithSynthetics("trace:orphan")); err != nil {
		t.Errorf("store-then-trace rejected: %v", err)
	}
}

// TestSessionRunValidatesThreshold: AtThreshold is held to the same rule
// as WithThreshold — an invalid per-call override errors instead of
// silently running a nonsense configuration.
func TestSessionRunValidatesThreshold(t *testing.T) {
	sess, err := NewSession(WithQuick(true))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(context.Background(), "table1", AtThreshold(-50)); err == nil ||
		!strings.Contains(err.Error(), "threshold") {
		t.Errorf("Run accepted a negative threshold (err=%v)", err)
	}
	if _, err := sess.RunAll(context.Background(), AtThreshold(0)); err == nil {
		t.Error("RunAll accepted a zero threshold")
	}
}

// TestSessionRunAndExperiments: the session front door lists and runs
// experiments (the cheap in-memory ones keep this test fast) with
// descriptor metadata matching the built reports.
func TestSessionRunAndExperiments(t *testing.T) {
	sess, err := NewSession(WithQuick(true))
	if err != nil {
		t.Fatal(err)
	}
	infos := sess.Experiments()
	if len(infos) == 0 || infos[0].ID != "table1" {
		t.Fatalf("experiment listing broken: %+v", infos)
	}
	for _, id := range []string{"table1", "table2"} {
		r, err := sess.Run(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if r.ID != id || r.Title == "" || r.Unit == "" {
			t.Errorf("%s: incomplete report metadata: %+v", id, r)
		}
	}
	if _, err := sess.Run(context.Background(), "fig99"); err == nil {
		t.Error("Run accepted an unknown experiment")
	}
}

// TestSessionWithBackend: a custom Backend plugged into a session via
// WithBackend accelerates warm runs exactly like a directory store —
// the second run over the same suite reads cells back instead of
// re-emulating, and the injected backend sees the traffic.
func TestSessionWithBackend(t *testing.T) {
	dir, err := store.OpenDir(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	opts := []Option{WithQuick(true), WithBackend(dir), WithSynthetics("syn:narrow/small/1")}
	cold, err := NewSession(opts...)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := cold.Run(context.Background(), "fig8")
	if err != nil {
		t.Fatal(err)
	}
	st, ok := cold.StoreStats()
	if !ok || st.Puts == 0 {
		t.Fatalf("cold session never stored through the backend: %+v (ok=%v)", st, ok)
	}

	warm, err := NewSession(opts...)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := warm.Run(context.Background(), "fig8")
	if err != nil {
		t.Fatal(err)
	}
	st, _ = warm.StoreStats()
	if st.Hits == 0 {
		t.Fatalf("warm session re-emulated everything: %+v", st)
	}
	if len(r1.Rows) != len(r2.Rows) {
		t.Fatalf("backend-accelerated run diverged: %d vs %d rows", len(r1.Rows), len(r2.Rows))
	}
}

// TestSessionReportKeyMatchesStoreDerivation: Session.ReportKey is the
// same address opgated derives directly via store.ReportKey — the
// consistency that lets the service look up work a session stored (and
// vice versa). It must also be sensitive to every keyed dimension.
func TestSessionReportKeyMatchesStoreDerivation(t *testing.T) {
	sess, err := NewSession(WithQuick(true), WithSynthetics("syn:narrow/small/1"))
	if err != nil {
		t.Fatal(err)
	}
	got := sess.ReportKey("fig8", AtThreshold(70))
	want := string(store.ReportKey("fig8", true, 70, []string{"syn:narrow/small/1"}, store.SelfIdentity()))
	if got != want {
		t.Fatalf("Session.ReportKey = %s, store.ReportKey = %s", got, want)
	}
	base := sess.ReportKey("fig8")
	for name, other := range map[string]string{
		"experiment": sess.ReportKey("fig9"),
		"threshold":  sess.ReportKey("fig8", AtThreshold(110)),
	} {
		if other == base {
			t.Errorf("report key insensitive to %s", name)
		}
	}
}
